// Job endpoints: chainserve doesn't just hand out schedules, it
// executes them. POST /v1/jobs plans a chain and runs it through the
// runtime supervisor with a fault-injecting runner (optionally with
// misspecified true rates and adaptive re-planning); GET /v1/jobs/{id}
// reports status and the final report; GET /v1/jobs/{id}/events streams
// the execution's event log as NDJSON while it happens; DELETE
// /v1/jobs/{id} cancels a running job.
//
// Every lifecycle transition (created -> planned -> running(progress)
// -> done/failed/cancelled) is appended to a jobstore.Store. With the
// default in-memory store that is bookkeeping; with -store-dir it is a
// write-ahead journal that lets a restarted service list finished jobs
// and resume interrupted ones from their disk checkpoints (see
// recover.go).
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"chainckpt/internal/chain"
	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/obs"
	"chainckpt/internal/platform"
	"chainckpt/internal/replay"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
	"chainckpt/internal/sim"
)

// jobRequest is the JSON shape of one execution request: a planning
// request plus runtime knobs.
type jobRequest struct {
	planRequest
	// Adaptive enables mid-run suffix re-planning on rate drift.
	Adaptive bool `json:"adaptive,omitempty"`
	// Seed fixes the fault sequence (default: derived from the job id).
	Seed uint64 `json:"seed,omitempty"`
	// ScaleF and ScaleS set the injected true error rates as multiples
	// of the platform's modeled rates (default 1: well-specified).
	ScaleF float64 `json:"true_rate_scale_f,omitempty"`
	ScaleS float64 `json:"true_rate_scale_s,omitempty"`
	// Runner selects the task runner: sim (fault-injecting, default),
	// nop (instant, error-free) or sleep (wall-clock paced, for watching
	// a job progress — and for killing a service mid-job to exercise
	// restart-resume).
	Runner string `json:"runner,omitempty"`
	// SleepScale sets the sleep runner's wall seconds per modeled second
	// (default 1e-4).
	SleepScale float64 `json:"sleep_scale,omitempty"`
	// Retention bounds how many disk checkpoint files the job keeps
	// (0 = all). A long resumable chain places many disk checkpoints,
	// but only the newest can ever be restored from; retaining a couple
	// (for tolerance to a corrupted newest file) bounds the job's disk
	// footprint without losing resumability — the same bound is applied
	// when a restart resumes the job.
	Retention int `json:"retention,omitempty"`
}

// validate rejects the knob combinations the runtime would choke on.
func (jr *jobRequest) validate() error {
	if jr.ScaleF < 0 || jr.ScaleS < 0 {
		return fmt.Errorf("rate scales must be non-negative")
	}
	if jr.SleepScale < 0 {
		return fmt.Errorf("sleep_scale must be non-negative")
	}
	if jr.Retention < 0 {
		return fmt.Errorf("retention must be non-negative")
	}
	switch jr.Runner {
	case "", "sim", "nop", "sleep":
		return nil
	}
	return fmt.Errorf("unknown runner %q (want sim, nop or sleep)", jr.Runner)
}

// normalize applies the defaults, so the marshaled spec a restart
// replays compiles to the same job.
func (jr *jobRequest) normalize() {
	if jr.ScaleF == 0 {
		jr.ScaleF = 1
	}
	if jr.ScaleS == 0 {
		jr.ScaleS = 1
	}
}

// newRunner builds the job's task runner.
func (jr *jobRequest) newRunner(p platform.Platform, seed uint64) runtime.TaskRunner {
	switch jr.Runner {
	case "nop":
		return runtime.NopRunner{}
	case "sleep":
		scale := jr.SleepScale
		if scale == 0 {
			scale = 1e-4
		}
		return runtime.SleepRunner{Scale: scale}
	default:
		return runtime.NewMisspecifiedRunner(p, jr.ScaleF, jr.ScaleS, seed)
	}
}

// jobStatus is the wire representation of a job.
type jobStatus struct {
	ID        string  `json:"id"`
	Status    string  `json:"status"` // running | done | failed | cancelled
	Adaptive  bool    `json:"adaptive,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	Predicted float64 `json:"predicted_makespan,omitempty"`
	// Resumes counts service restarts that relaunched this job.
	Resumes   int             `json:"resumes,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	Report    *runtime.Report `json:"report,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// job is one tracked execution. Event followers block on cond until new
// events arrive or the run finishes. rec mirrors the job's durable
// record; its Version advances with every persisted transition.
// recorder, when attached, event-sources the execution (trace frames,
// lifecycle records, estimator snapshots) into a replay.Recording whose
// canonical bytes land in recording once the run is sealed.
type job struct {
	mu        sync.Mutex
	cond      *sync.Cond
	status    jobStatus
	events    []sim.TraceEvent
	done      bool
	cancelled bool
	cancel    context.CancelFunc
	rec       jobstore.Record

	recorder  *replay.Recorder
	recording []byte
	recErr    error
}

func newJob(st jobStatus, rec jobstore.Record) *job {
	j := &job{status: st, rec: rec}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// record snapshots the job's current durable record.
func (j *job) record() jobstore.Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec
}

// attachRecorder starts event-sourcing the job: initial carries the
// lifecycle records persisted before the recorder existed (the
// created/planned pair of a fresh job, the running record of a resumed
// one); every later transition is fed by jobManager.transition.
func (j *job) attachRecorder(rec *replay.Recorder, initial ...jobstore.Record) {
	for _, r := range initial {
		rec.Lifecycle(r)
	}
	j.mu.Lock()
	j.recorder = rec
	j.mu.Unlock()
}

func (j *job) getRecorder() *replay.Recorder {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recorder
}

// sealRecording publishes the canonical recording bytes (or the sealing
// failure) and wakes trace waiters.
func (j *job) sealRecording(data []byte, err error) {
	j.mu.Lock()
	j.recording, j.recErr = data, err
	j.cond.Broadcast()
	j.mu.Unlock()
}

// errNoRecording marks a job that executes without a recorder: one
// adopted in its terminal state from a previous service life.
var errNoRecording = fmt.Errorf("job has no recording (finished in a previous service life)")

// waitRecording blocks until the job's recording is sealed, the sealing
// fails, or ctx is done. Callers must arrange a cond broadcast on ctx
// cancellation (context.AfterFunc), as handleJobTrace does.
func (j *job) waitRecording(ctx context.Context) ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.recorder == nil {
		return nil, errNoRecording
	}
	for j.recording == nil && j.recErr == nil && ctx.Err() == nil {
		j.cond.Wait()
	}
	switch {
	case j.recording != nil:
		return j.recording, nil
	case j.recErr != nil:
		return nil, j.recErr
	default:
		return nil, ctx.Err()
	}
}

// append records one event and wakes followers.
func (j *job) append(ev sim.TraceEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish seals the job and wakes followers.
func (j *job) finish(rep *runtime.Report, err error) {
	j.mu.Lock()
	switch {
	case err != nil && j.cancelled:
		j.status.Status = "cancelled"
		j.status.Error = err.Error()
	case err != nil:
		j.status.Status = "failed"
		j.status.Error = err.Error()
	default:
		j.status.Status = "done"
		j.status.Report = rep
	}
	j.done = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// requestCancel marks the job cancelled and stops its execution,
// reporting whether it was still running.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done {
		return false
	}
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

func (j *job) setCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	j.cancel = cancel
	cancelled := j.cancelled
	j.mu.Unlock()
	// A DELETE that raced job admission was acknowledged with
	// "cancelling" before the cancel func existed; honor it now.
	if cancelled {
		cancel()
	}
}

// next returns events[from:] once new data or completion is available,
// blocking otherwise. The returned done flag is true when no further
// events will come. A cancelled ctx unblocks with done=true.
func (j *job) next(ctx context.Context, from int) ([]sim.TraceEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= from && !j.done && ctx.Err() == nil {
		j.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, true
	}
	out := make([]sim.TraceEvent, len(j.events)-from)
	copy(out, j.events[from:])
	return out, j.done && from+len(out) == len(j.events)
}

func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// summary is snapshot without the event trace, for listings: a full
// report of a hot run carries thousands of events.
func (j *job) summary() jobStatus {
	st := j.snapshot()
	if st.Report != nil && st.Report.Trace != nil {
		rep := *st.Report
		rep.Trace = nil
		st.Report = &rep
	}
	return st
}

func (j *job) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// errTooManyJobs is the backpressure signal of the job manager.
var errTooManyJobs = fmt.Errorf("too many jobs executing; retry later")

// jobManager tracks jobs by id and persists their lifecycle through a
// jobstore.Store. Finished jobs are retained (newest first) up to
// maxJobs; concurrent executions are capped at maxRunning so a request
// burst cannot spawn unbounded goroutines.
type jobManager struct {
	mu         sync.Mutex
	seq        uint64
	jobs       map[string]*job
	order      []string // creation order, for eviction
	maxJobs    int
	maxRunning int

	store    jobstore.Store
	ckptRoot string // per-job checkpoint directories ("" = volatile)

	storeErrors atomic.Uint64
}

// newJobManager builds a manager over the given durable store. Job
// numbering continues from the store's watermark, so ids stay unique
// across restarts.
func newJobManager(store jobstore.Store, ckptRoot string) *jobManager {
	return &jobManager{
		jobs: make(map[string]*job), maxJobs: 512, maxRunning: 32,
		store: store, ckptRoot: ckptRoot, seq: store.MaxSeq(),
	}
}

// ckptDir returns the checkpoint directory of one job, or "" when the
// manager runs volatile.
func (m *jobManager) ckptDir(id string) string {
	if m.ckptRoot == "" {
		return ""
	}
	return filepath.Join(m.ckptRoot, "jobs", id)
}

// newCheckpointStore opens the job's checkpoint store: fingerprinted
// files under the store root, or a volatile store without one.
// retention > 0 bounds the disk checkpoints kept (jobRequest.Retention
// — applied identically on admission and on restart-resume, so the
// bound survives the service dying).
func (m *jobManager) newCheckpointStore(id string, retention int) (*runtime.Store, error) {
	ck, err := runtime.NewStore(m.ckptDir(id))
	if err != nil {
		return nil, err
	}
	if retention > 0 {
		ck.SetRetention(retention)
	}
	return ck, nil
}

// persist appends one record, counting failures rather than
// propagating them into the execution path: a full disk must degrade
// durability, not abort runs. It reports whether the record was
// committed, so callers can avoid destroying state (checkpoint
// directories) whose durable record did not reach its terminal form.
func (m *jobManager) persist(rec jobstore.Record) bool {
	if err := m.store.Append(rec); err != nil {
		m.storeErrors.Add(1)
		return false
	}
	return true
}

// transition bumps the job's record version, applies mut, and persists
// the result, reporting whether the append was committed. A recorder
// attached to the job sees every transition, normalized, in order.
func (m *jobManager) transition(j *job, mut func(*jobstore.Record)) bool {
	j.mu.Lock()
	j.rec.Version++
	j.rec.UpdatedAt = time.Now().UTC()
	mut(&j.rec)
	rec := j.rec
	recorder := j.recorder
	j.mu.Unlock()
	if recorder != nil {
		recorder.Lifecycle(rec)
	}
	return m.persist(rec)
}

// create registers a new job and persists its created and planned
// transitions (the schedule is already known: planning precedes
// admission). reqSeed is the client's requested RNG seed; 0 derives one
// from the job's sequence number. The resolved seed is returned and
// travels in the durable record, so a failed run can always be
// reproduced from its journal alone.
func (m *jobManager) create(st jobStatus, spec, sched json.RawMessage, fingerprint string, reqSeed uint64) (*job, uint64, error) {
	m.mu.Lock()
	running := 0
	for _, j := range m.jobs {
		if !j.isDone() {
			running++
		}
	}
	if running >= m.maxRunning {
		m.mu.Unlock()
		return nil, 0, errTooManyJobs
	}
	evicted := m.evictLocked()
	m.seq++
	seq := m.seq
	seed := reqSeed
	if seed == 0 {
		seed = seq
	}
	st.ID = fmt.Sprintf("job-%d", seq)
	st.Status = "running"
	st.CreatedAt = time.Now().UTC()
	rec := jobstore.Record{
		ID: st.ID, Seq: seq, Version: 2, State: jobstore.StatePlanned,
		CreatedAt: st.CreatedAt, UpdatedAt: st.CreatedAt,
		Fingerprint: fingerprint, Algorithm: st.Algorithm, Adaptive: st.Adaptive,
		Seed: seed, Spec: spec, Schedule: sched, Predicted: st.Predicted,
	}
	j := newJob(st, rec)
	m.jobs[st.ID] = j
	m.order = append(m.order, st.ID)
	m.mu.Unlock()

	// All disk work — tombstoning and checkpoint cleanup for evicted
	// jobs, the fsync'd created/planned appends — happens outside the
	// manager lock, so durability never serializes the whole job API
	// behind the disk.
	for _, id := range evicted {
		if err := m.store.Delete(id); err != nil {
			m.storeErrors.Add(1)
		}
		if dir := m.ckptDir(id); dir != "" {
			os.RemoveAll(dir)
		}
	}
	created := rec
	created.Version, created.State = 1, jobstore.StateCreated
	created.Schedule, created.Predicted = nil, 0
	m.persist(created)
	m.persist(rec)
	return j, seed, nil
}

// initialRecords reconstructs the created/planned pair create persisted
// for j, in order — what a recorder attached after admission must see
// first.
func (j *job) initialRecords() []jobstore.Record {
	planned := j.record()
	created := planned
	created.Version, created.State = 1, jobstore.StateCreated
	created.Schedule, created.Predicted = nil, 0
	return []jobstore.Record{created, planned}
}

// adopt re-registers a job replayed from the durable store without
// starting an execution — the restart path for terminal records. The
// persisted report (trace-free) is restored into the listing.
func (m *jobManager) adopt(rec jobstore.Record) *job {
	st := jobStatus{
		ID: rec.ID, Status: string(rec.State), Adaptive: rec.Adaptive,
		Algorithm: rec.Algorithm, Predicted: rec.Predicted,
		Resumes: rec.Resumes, CreatedAt: rec.CreatedAt, Error: rec.Error,
	}
	if len(rec.Report) > 0 {
		var rep runtime.Report
		if err := json.Unmarshal(rec.Report, &rep); err == nil {
			st.Report = &rep
		}
	}
	j := newJob(st, rec)
	j.done = true
	m.mu.Lock()
	if rec.Seq > m.seq {
		m.seq = rec.Seq
	}
	m.jobs[rec.ID] = j
	m.order = append(m.order, rec.ID)
	m.mu.Unlock()
	return j
}

// adoptRunning re-registers an interrupted job as running again,
// persisting a running transition with the (possibly re-spliced)
// schedule and bumped resume counter.
func (m *jobManager) adoptRunning(rec jobstore.Record, sched json.RawMessage) *job {
	rec.Resumes++
	st := jobStatus{
		ID: rec.ID, Status: "running", Adaptive: rec.Adaptive,
		Algorithm: rec.Algorithm, Predicted: rec.Predicted,
		Resumes: rec.Resumes, CreatedAt: rec.CreatedAt,
	}
	j := newJob(st, rec)
	m.mu.Lock()
	if rec.Seq > m.seq {
		m.seq = rec.Seq
	}
	m.jobs[rec.ID] = j
	m.order = append(m.order, rec.ID)
	m.mu.Unlock()
	m.transition(j, func(r *jobstore.Record) {
		r.State = jobstore.StateRunning
		if sched != nil {
			r.Schedule = sched
		}
	})
	return j
}

// evictLocked drops the oldest finished jobs beyond the retention
// bound from the in-memory map, returning their ids; caller holds m.mu
// and performs the disk half (store tombstone, checkpoint-directory
// removal) after releasing it.
func (m *jobManager) evictLocked() []string {
	var evicted []string
	for len(m.jobs) >= m.maxJobs {
		found := false
		for i, id := range m.order {
			if j, ok := m.jobs[id]; ok && j.isDone() {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = append(evicted, id)
				found = true
				break
			}
		}
		if !found {
			break // everything retained is still running
		}
	}
	return evicted
}

// progress persists one running(progress) transition: the boundary just
// committed to disk, the estimator evidence at that moment, and the
// schedule currently executing — adaptive suffix splices must reach the
// journal, or a restart would resume against the original schedule and
// miscount its disk-checkpoint budget. The schedule is marshaled here,
// synchronously on the execution goroutine, because the supervisor may
// splice it right after the hook returns.
func (m *jobManager) progress(j *job, boundary int, est runtime.EstimatorState, sched *schedule.Schedule) {
	estJSON, err := json.Marshal(est)
	if err != nil {
		estJSON = nil
	}
	schedJSON, schedErr := json.Marshal(sched)
	m.transition(j, func(r *jobstore.Record) {
		r.State = jobstore.StateRunning
		r.Progress = boundary
		r.Estimator = estJSON
		if schedErr == nil {
			r.Schedule = schedJSON
		}
	})
}

// finish seals the job and persists its terminal transition. The
// persisted report drops the trace (the event log of a long run dwarfs
// the record); the in-memory job keeps it for /events followers. A
// finished job's checkpoints are garbage and their directory is
// removed.
func (m *jobManager) finish(j *job, rep *runtime.Report, err error) {
	j.finish(rep, err)
	st := j.snapshot()
	var repJSON json.RawMessage
	if rep != nil {
		trimmed := *rep
		trimmed.Trace = nil
		if b, merr := json.Marshal(&trimmed); merr == nil {
			repJSON = b
		}
	}
	persisted := m.transition(j, func(r *jobstore.Record) {
		switch st.Status {
		case "done":
			r.State = jobstore.StateDone
		case "cancelled":
			r.State = jobstore.StateCancelled
		default:
			r.State = jobstore.StateFailed
		}
		r.Error = st.Error
		r.Report = repJSON
		if rep != nil {
			r.Progress = rep.FinalSchedule.Len()
		}
	})
	// Only discard the checkpoints once the terminal record is durable:
	// if the append failed (store closed mid-shutdown, disk full), the
	// record still says running and the next boot must be able to resume
	// from these files instead of re-executing the chain.
	if dir := m.ckptDir(st.ID); dir != "" && persisted {
		os.RemoveAll(dir)
	}
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *jobManager) list() []jobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]jobStatus, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j.summary())
		}
	}
	return out
}

func (m *jobManager) counts() (total, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.done {
			running++
		}
		j.mu.Unlock()
	}
	return len(m.jobs), running
}

// launch starts the job's execution goroutine, wiring the event
// observer, the durable progress hook and the cancel handle. A recorder
// attached to the job is chained into both hooks and sealed once the
// terminal transition is journaled, so its recording carries the full
// lifecycle including how the job ended.
//
// The execution also roots a trace under the job's id: the span rides
// the context into the supervisor, which hangs its per-task, verify,
// checkpoint-commit, recovery and re-plan spans below it — the tree
// GET /v1/jobs/{id}/spans serves. Spans measure wall time only and
// never touch the recorder, so the replay recording stays byte-stable
// with tracing on or off.
func (s *server) launch(j *job, runJob runtime.Job, adaptive bool) {
	ctx, cancel := context.WithCancel(context.Background())
	j.setCancel(cancel)
	root := s.obs.jobTracer.StartTrace(j.snapshot().ID, "job")
	if root != nil {
		root.SetAttr("algorithm", string(runJob.Algorithm))
		if adaptive {
			root.SetAttr("adaptive", "true")
		}
		if runJob.Resume {
			root.SetAttr("resume", "true")
		}
		ctx = obs.ContextWithSpan(ctx, root)
	}
	recorder := j.getRecorder()
	runJob.Observer = j.append
	runJob.Record = true
	if recorder != nil {
		runJob.Observer = func(ev sim.TraceEvent) {
			recorder.Observe(ev)
			j.append(ev)
		}
	}
	runJob.Progress = func(b int, est runtime.EstimatorState, sched *schedule.Schedule) {
		if recorder != nil {
			recorder.Progress(b, est, sched)
		}
		s.jobs.progress(j, b, est, sched)
	}
	go func() {
		defer cancel()
		var rep *runtime.Report
		var err error
		if adaptive {
			rep, err = s.sup.RunAdaptive(ctx, runJob, runtime.AdaptPolicy{})
		} else {
			rep, err = s.sup.Run(ctx, runJob)
		}
		// Digest the checkpoint tier before finish: a finished job's
		// checkpoint directory is removed once its terminal record is
		// durable, and the recording must capture the tier as the run
		// left it.
		if recorder != nil {
			recorder.Checkpoints(runJob.Store)
		}
		s.jobs.finish(j, rep, err)
		if root != nil {
			root.SetAttr("status", j.snapshot().Status)
			root.End()
		}
		if recorder != nil {
			recording, ferr := recorder.Finish(rep, nil)
			var data []byte
			if ferr == nil {
				data, ferr = recording.Canonical()
			}
			j.sealRecording(data, ferr)
			if ferr == nil {
				s.writeRecording(j.snapshot().ID, data)
			}
		}
		// finish classifies a cancel as "cancelled", which is not a
		// failure: only genuine failures feed the error-rate metric.
		if j.snapshot().Status == "failed" {
			s.jobErrors.Add(1)
		}
	}()
}

// writeRecording persists one sealed recording under the record
// directory, when configured.
func (s *server) writeRecording(id string, data []byte) {
	if s.recordDir == "" {
		return
	}
	if err := os.WriteFile(filepath.Join(s.recordDir, id+".json"), data, 0o644); err != nil {
		s.jobs.storeErrors.Add(1)
	}
}

// runnerName resolves the wire runner field to the recorded kind.
func runnerName(r string) string {
	if r == "" {
		return "sim"
	}
	return r
}

// jobFingerprint is the instance fingerprint as persisted in job
// records and recordings. engine.Fingerprint keys are raw hash bytes (a
// memo key, not a display string); hex-encode them here so the journal
// and the recording meta carry stable, printable JSON — raw bytes would
// be mangled into U+FFFD by the encoder and never round-trip.
func jobFingerprint(req engine.Request) string {
	raw, err := engine.Fingerprint(req)
	if err != nil {
		return ""
	}
	return hex.EncodeToString([]byte(raw))
}

// recorderMeta stamps a job's recording: the resolved seed, the
// instance fingerprints and the runtime knobs — everything a replay
// needs to recognize the run. The instance fingerprint is already hex
// (see jobFingerprint); rate-misspecification scales only apply to the
// sim runner.
func recorderMeta(jr *jobRequest, seed uint64, algorithm, instance string,
	c *chain.Chain, sched *schedule.Schedule, resume bool) replay.Meta {
	m := replay.Meta{
		Seed: seed, Algorithm: algorithm, Runner: runnerName(jr.Runner),
		Adaptive: jr.Adaptive, Resume: resume,
		ChainFingerprint: replay.ChainFingerprint(c),
		Instance:         instance,
	}
	if m.Runner == "sim" {
		m.ScaleF, m.ScaleS = jr.ScaleF, jr.ScaleS
	}
	if sched != nil {
		m.ScheduleFingerprint = replay.ScheduleFingerprint(sched)
	}
	return m
}

func (s *server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var jr jobRequest
	if err := decodeJSON(r, &jr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := jr.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	jr.normalize()
	req, c, err := jr.toEngine()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Plan up front (through the shared memo) so the job status can show
	// the model prediction from the start, and budget/cost options apply.
	res, err := s.eng.Plan(r.Context(), req)
	if err != nil {
		s.planErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	// The normalized spec is the job's durable identity: a restart
	// recompiles the chain, platform and runner from exactly these
	// bytes.
	spec, err := json.Marshal(&jr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	schedJSON, err := json.Marshal(res.Schedule)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	fingerprint := jobFingerprint(req)

	j, seed, err := s.jobs.create(jobStatus{
		Adaptive:  jr.Adaptive,
		Algorithm: string(res.Algorithm),
		Predicted: res.ExpectedMakespan,
	}, spec, schedJSON, fingerprint, jr.Seed)
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	ck, err := s.jobs.newCheckpointStore(j.snapshot().ID, jr.Retention)
	if err != nil {
		s.jobs.finish(j, nil, err)
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	j.attachRecorder(replay.NewRecorder(recorderMeta(
		&jr, seed, string(res.Algorithm), fingerprint, c, res.Schedule, false,
	)), j.initialRecords()...)
	s.launch(j, runtime.Job{
		Chain:              c,
		Platform:           req.Platform,
		Schedule:           res.Schedule,
		Algorithm:          req.Algorithm,
		Costs:              req.Opts.Costs,
		MaxDiskCheckpoints: req.Opts.MaxDiskCheckpoints,
		Runner:             jr.newRunner(req.Platform, seed),
		Store:              ck,
	}, jr.Adaptive)

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJobCancel stops a running job; its terminal state is persisted
// as cancelled. Cancelling a job that already reached a terminal state
// is a conflict, not a success: the response is 409 with the terminal
// state in the body, so an at-least-once cancel client can tell "I
// stopped it" (202) apart from "it had already ended as X" instead of
// mistaking a done job for a cancelled one.
func (s *server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	if j.requestCancel() {
		writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
		return
	}
	writeJSON(w, http.StatusConflict, j.summary())
}

// handleJobTrace serves the job's sealed replay recording in canonical
// JSON form: the full event-sourced capture of the execution (trace
// frames, estimator snapshots, checkpoint digests, normalized lifecycle
// records, normalized report). The recording carries no job id and no
// timestamps, so two runs of the same spec with the same explicit seed
// answer with byte-identical bodies — the property the replay CI gate
// diffs. Blocks until the run is sealed; 409 for jobs adopted from a
// previous service life (their execution was never recorded).
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	// Unblock waitRecording when the client disconnects.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	data, err := j.waitRecording(ctx)
	switch {
	case errors.Is(err, errNoRecording):
		writeError(w, http.StatusConflict, err)
	case ctx.Err() != nil:
		return // client went away
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(data)
	}
}

// handleJobEvents streams the job's event log as NDJSON, following the
// execution live until it completes (or the client goes away).
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Unblock next() when the client disconnects.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	enc := json.NewEncoder(w)
	from := 0
	for {
		events, done := j.next(ctx, from)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

// Job endpoints: chainserve doesn't just hand out schedules, it
// executes them. POST /v1/jobs plans a chain and runs it through the
// runtime supervisor with a fault-injecting runner (optionally with
// misspecified true rates and adaptive re-planning); GET /v1/jobs/{id}
// reports status and the final report; GET /v1/jobs/{id}/events streams
// the execution's event log as NDJSON while it happens.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"chainckpt/internal/runtime"
	"chainckpt/internal/sim"
)

// jobRequest is the JSON shape of one execution request: a planning
// request plus runtime knobs.
type jobRequest struct {
	planRequest
	// Adaptive enables mid-run suffix re-planning on rate drift.
	Adaptive bool `json:"adaptive,omitempty"`
	// Seed fixes the fault sequence (default: derived from the job id).
	Seed uint64 `json:"seed,omitempty"`
	// ScaleF and ScaleS set the injected true error rates as multiples
	// of the platform's modeled rates (default 1: well-specified).
	ScaleF float64 `json:"true_rate_scale_f,omitempty"`
	ScaleS float64 `json:"true_rate_scale_s,omitempty"`
}

// jobStatus is the wire representation of a job.
type jobStatus struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"` // running | done | failed
	Adaptive  bool            `json:"adaptive,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"`
	Predicted float64         `json:"predicted_makespan,omitempty"`
	CreatedAt time.Time       `json:"created_at"`
	Report    *runtime.Report `json:"report,omitempty"`
	Error     string          `json:"error,omitempty"`
}

// job is one tracked execution. Event followers block on cond until new
// events arrive or the run finishes.
type job struct {
	mu     sync.Mutex
	cond   *sync.Cond
	status jobStatus
	events []sim.TraceEvent
	done   bool
}

func newJob(st jobStatus) *job {
	j := &job{status: st}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// append records one event and wakes followers.
func (j *job) append(ev sim.TraceEvent) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish seals the job and wakes followers.
func (j *job) finish(rep *runtime.Report, err error) {
	j.mu.Lock()
	if err != nil {
		j.status.Status = "failed"
		j.status.Error = err.Error()
	} else {
		j.status.Status = "done"
		j.status.Report = rep
	}
	j.done = true
	j.cond.Broadcast()
	j.mu.Unlock()
}

// next returns events[from:] once new data or completion is available,
// blocking otherwise. The returned done flag is true when no further
// events will come. A cancelled ctx unblocks with done=true.
func (j *job) next(ctx context.Context, from int) ([]sim.TraceEvent, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= from && !j.done && ctx.Err() == nil {
		j.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, true
	}
	out := make([]sim.TraceEvent, len(j.events)-from)
	copy(out, j.events[from:])
	return out, j.done && from+len(out) == len(j.events)
}

func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// summary is snapshot without the event trace, for listings: a full
// report of a hot run carries thousands of events.
func (j *job) summary() jobStatus {
	st := j.snapshot()
	if st.Report != nil && st.Report.Trace != nil {
		rep := *st.Report
		rep.Trace = nil
		st.Report = &rep
	}
	return st
}

func (j *job) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// errTooManyJobs is the backpressure signal of the job manager.
var errTooManyJobs = fmt.Errorf("too many jobs executing; retry later")

// jobManager tracks jobs by id. Finished jobs are retained (newest
// first) up to maxJobs; concurrent executions are capped at maxRunning
// so a request burst cannot spawn unbounded goroutines.
type jobManager struct {
	mu         sync.Mutex
	seq        uint64
	jobs       map[string]*job
	order      []string // creation order, for eviction
	maxJobs    int
	maxRunning int
}

func newJobManager() *jobManager {
	return &jobManager{jobs: make(map[string]*job), maxJobs: 512, maxRunning: 32}
}

func (m *jobManager) create(st jobStatus) (*job, uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	running := 0
	for _, j := range m.jobs {
		if !j.isDone() {
			running++
		}
	}
	if running >= m.maxRunning {
		return nil, 0, errTooManyJobs
	}
	// Evict the oldest finished jobs beyond the retention bound.
	for len(m.jobs) >= m.maxJobs {
		evicted := false
		for i, id := range m.order {
			if j, ok := m.jobs[id]; ok && j.isDone() {
				delete(m.jobs, id)
				m.order = append(m.order[:i], m.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is still running
		}
	}
	m.seq++
	st.ID = fmt.Sprintf("job-%d", m.seq)
	st.Status = "running"
	st.CreatedAt = time.Now().UTC()
	j := newJob(st)
	m.jobs[st.ID] = j
	m.order = append(m.order, st.ID)
	return j, m.seq, nil
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *jobManager) list() []jobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]jobStatus, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			out = append(out, j.summary())
		}
	}
	return out
}

func (m *jobManager) counts() (total, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if !j.done {
			running++
		}
		j.mu.Unlock()
	}
	return len(m.jobs), running
}

func (s *server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var jr jobRequest
	if err := decodeJSON(r, &jr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if jr.ScaleF < 0 || jr.ScaleS < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("rate scales must be non-negative"))
		return
	}
	if jr.ScaleF == 0 {
		jr.ScaleF = 1
	}
	if jr.ScaleS == 0 {
		jr.ScaleS = 1
	}
	req, c, err := jr.toEngine()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	// Plan up front (through the shared memo) so the job status can show
	// the model prediction from the start, and budget/cost options apply.
	res, err := s.eng.Plan(r.Context(), req)
	if err != nil {
		s.planErrors.Add(1)
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	j, seq, err := s.jobs.create(jobStatus{
		Adaptive:  jr.Adaptive,
		Algorithm: string(res.Algorithm),
		Predicted: res.ExpectedMakespan,
	})
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	seed := jr.Seed
	if seed == 0 {
		seed = seq
	}
	runJob := runtime.Job{
		Chain:              c,
		Platform:           req.Platform,
		Schedule:           res.Schedule,
		Algorithm:          req.Algorithm,
		Costs:              req.Opts.Costs,
		MaxDiskCheckpoints: req.Opts.MaxDiskCheckpoints,
		Runner:             runtime.NewMisspecifiedRunner(req.Platform, jr.ScaleF, jr.ScaleS, seed),
		Observer:           j.append,
		Record:             true,
	}
	go func() {
		var rep *runtime.Report
		var err error
		if jr.Adaptive {
			rep, err = s.sup.RunAdaptive(context.Background(), runJob, runtime.AdaptPolicy{})
		} else {
			rep, err = s.sup.Run(context.Background(), runJob)
		}
		if err != nil {
			s.jobErrors.Add(1)
		}
		j.finish(rep, err)
	}()

	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleJobEvents streams the job's event log as NDJSON, following the
// execution live until it completes (or the client goes away).
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Unblock next() when the client disconnects.
	ctx := r.Context()
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	enc := json.NewEncoder(w)
	from := 0
	for {
		events, done := j.next(ctx, from)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		from += len(events)
		if flusher != nil {
			flusher.Flush()
		}
		if done {
			return
		}
	}
}

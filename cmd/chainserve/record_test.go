// Tests for the replay-recording surface of the service: the trace
// endpoint's determinism contract (same spec + same explicit seed =>
// byte-identical canonical recordings), the -record-dir mirror, and the
// conflict answer for jobs whose execution predates the recorder.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/replay"
)

// recordedSpec fixes every input of the run, seed included: the
// determinism gate depends on nothing but these bytes.
const recordedSpec = `{"algorithm":"ADMV*","platform_spec":{"name":"ReplayLab",` +
	`"lambda_f":1e-4,"lambda_s":4e-4,"c_d":100,"c_m":10,"r_d":100,"r_m":10,` +
	`"v_star":10,"v":0.1,"recall":0.8},"pattern":"uniform","n":24,"total":24000,` +
	`"true_rate_scale_f":2,"seed":17}`

// fetchTrace posts one job and returns its sealed canonical recording.
func fetchTrace(t *testing.T, baseURL, spec string) (string, []byte) {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create status %d: %s", resp.StatusCode, body)
	}
	var created jobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	tr, err := http.Get(baseURL + "/v1/jobs/" + created.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, tr)
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", tr.StatusCode, data)
	}
	return created.ID, []byte(data)
}

// TestTraceEndpointIsDeterministic is the replay gate the CI job runs:
// two jobs from identical specs (explicit seed) must answer
// GET /v1/jobs/{id}/trace with byte-identical bodies — the recording
// carries no job id, no sequence numbers and no timestamps, so a plain
// diff is the equivalence check.
func TestTraceEndpointIsDeterministic(t *testing.T) {
	_, ts := newTestServer(t)
	id1, rec1 := fetchTrace(t, ts.URL, recordedSpec)
	id2, rec2 := fetchTrace(t, ts.URL, recordedSpec)
	if id1 == id2 {
		t.Fatalf("distinct jobs share id %s", id1)
	}
	if string(rec1) != string(rec2) {
		a, errA := replay.Decode(rec1)
		b, errB := replay.Decode(rec2)
		if errA != nil || errB != nil {
			t.Fatalf("recordings differ and do not decode (%v, %v)", errA, errB)
		}
		d, _ := replay.Diff(a, b)
		t.Fatalf("identical specs, divergent recordings: %s\nrepro: go test ./cmd/chainserve -run TestTraceEndpointIsDeterministic -count=1  # seed=17", d)
	}

	// The recording is a well-formed, non-trivial capture of the run.
	rec, err := replay.Decode(rec1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta.Seed != 17 || rec.Meta.Runner != "sim" || rec.Meta.Algorithm == "" {
		t.Fatalf("meta: %+v", rec.Meta)
	}
	if rec.Meta.ChainFingerprint == "" || rec.Meta.ScheduleFingerprint == "" || rec.Meta.Instance == "" {
		t.Fatalf("meta is missing instance fingerprints: %+v", rec.Meta)
	}
	// All three fingerprints must be printable hex, not raw hash bytes
	// (raw bytes are not valid UTF-8 and get mangled by JSON encoding).
	for name, fp := range map[string]string{
		"chain": rec.Meta.ChainFingerprint, "schedule": rec.Meta.ScheduleFingerprint,
		"instance": rec.Meta.Instance,
	} {
		if _, err := hex.DecodeString(fp); err != nil {
			t.Fatalf("%s fingerprint is not hex (%v): %q", name, err, fp)
		}
	}
	if len(rec.Frames) == 0 || len(rec.Checkpoints) == 0 || rec.Report == nil {
		t.Fatalf("recording is incomplete: %d frames, %d checkpoints, report=%v",
			len(rec.Frames), len(rec.Checkpoints), rec.Report)
	}
	if rec.Report.Seed != 17 {
		t.Fatalf("report seed %d, want 17", rec.Report.Seed)
	}
	// The lifecycle journal walks created -> planned -> running* -> done
	// with identity and timestamps normalized away.
	if len(rec.Journal) < 3 {
		t.Fatalf("journal has %d records, want the full lifecycle", len(rec.Journal))
	}
	if rec.Journal[0].State != jobstore.StateCreated || rec.Journal[1].State != jobstore.StatePlanned {
		t.Fatalf("journal opens %s, %s", rec.Journal[0].State, rec.Journal[1].State)
	}
	if last := rec.Journal[len(rec.Journal)-1]; last.State != jobstore.StateDone {
		t.Fatalf("journal ends in %s, want done", last.State)
	}
	for i, jr := range rec.Journal {
		if jr.ID != "" || jr.Seq != 0 || !jr.CreatedAt.IsZero() || !jr.UpdatedAt.IsZero() {
			t.Fatalf("journal record %d not normalized: %+v", i, jr)
		}
		if jr.Seed != 17 {
			t.Fatalf("journal record %d lost the seed: %+v", i, jr)
		}
	}
}

// TestRecordDirMirrorsTraceEndpoint: with a record directory configured
// the sealed recording also lands on disk as <id>.json, byte-identical
// to the endpoint's body.
func TestRecordDirMirrorsTraceEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.recordDir = t.TempDir()
	id, rec := fetchTrace(t, ts.URL, recordedSpec)
	onDisk, err := os.ReadFile(filepath.Join(srv.recordDir, id+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != string(rec) {
		t.Fatal("recording on disk differs from the trace endpoint's body")
	}
}

// TestTraceOfAdoptedJobConflicts: a job adopted in its terminal state
// from a previous service life has no recording — its execution
// happened before this recorder existed — and the endpoint must say so
// with 409 rather than hang or 500.
func TestTraceOfAdoptedJobConflicts(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	now := time.Now().UTC()
	if err := st.Append(jobstore.Record{
		ID: "job-1", Seq: 1, Version: 3, State: jobstore.StateDone,
		CreatedAt: now, UpdatedAt: now,
	}); err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv := newServerWithStore(eng, st, dir)
	if resumed, adopted := srv.recoverJobs(context.Background()); resumed != 0 || adopted != 1 {
		t.Fatalf("recoverJobs = (%d, %d), want (0, 1)", resumed, adopted)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/v1/jobs/job-1/trace")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of adopted job: status %d (%s), want 409", resp.StatusCode, body)
	}
}

// The service's observability plane: one obs.Registry every layer
// feeds, two trace rings (HTTP requests and job executions), and the
// collectors that re-emit the engine/kernel/supervisor/jobstore stats
// snapshots under their historical chainserve_* names. /metrics is
// rendered entirely from the registry — the hand-rolled Fprintf
// exposition this file replaced could drift from the text format;
// the registry's writer is lint-checked against it in tests.
package main

import (
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/obs"
	"chainckpt/internal/runtime"
)

// obsPlane bundles what main() must build before the engine exists:
// the registry and the per-layer metric handles that engine.New,
// jobstore.Open and runtime.New take at construction. Requests and
// jobs get separate trace rings so a scrape-heavy or chatty client
// cannot evict the span trees of recently finished jobs.
type obsPlane struct {
	reg        *obs.Registry
	httpTracer *obs.Tracer
	jobTracer  *obs.Tracer

	engine   *engine.Metrics
	runtime  *runtime.Metrics
	jobstore *jobstore.Metrics
}

func newObsPlane() *obsPlane {
	reg := obs.NewRegistry()
	return &obsPlane{
		reg:        reg,
		httpTracer: obs.NewTracer(64),
		jobTracer:  obs.NewTracer(128),
		engine:     engine.NewMetrics(reg),
		runtime:    runtime.NewMetrics(reg),
		jobstore:   jobstore.NewMetrics(reg),
	}
}

// scrapeSnapshot is the one consistent stats snapshot a scrape renders
// from. The registry's scrape hook refreshes it once per exposition;
// every collector then reads the same numbers, so a scrape can never
// show an engine-wide total disagreeing with its per-shard breakdown
// because the engine moved between two Stats() calls.
type scrapeSnapshot struct {
	mu          sync.Mutex
	eng         engine.Stats
	supReplans  uint64
	jst         jobstore.Stats
	storeErrors uint64
	jobsTotal   int
	jobsRunning int
}

// initObs creates the server's own instruments and registers the
// collectors that project the layered stats snapshots into the
// registry. Every metric name predating the registry is preserved.
func (s *server) initObs() {
	reg := s.obs.reg
	s.httpRequests = reg.NewCounter("chainserve_http_requests_total",
		"HTTP requests received.")
	s.planErrors = reg.NewCounter("chainserve_plan_errors_total",
		"Planning requests that failed.")
	s.jobErrors = reg.NewCounter("chainserve_job_errors_total",
		"Execution jobs that failed.")
	s.jobsResumed = reg.NewCounter("chainserve_jobs_resumed_total",
		"Interrupted jobs resumed after a restart.")
	s.replans = reg.NewCounter("chainserve_replan_requests_total",
		"Suffix re-plans served through /v1/replan.")
	s.routeReqs = reg.NewCounterVec("chainserve_http_route_requests_total",
		"HTTP requests by route and final status code.", "route", "code")
	s.routeLat = reg.NewHistogramVec("chainserve_http_request_seconds",
		"HTTP request latency by route.", nil, "route")

	snap := &scrapeSnapshot{}
	reg.OnScrape(func() {
		est := s.eng.Stats()
		sst := s.sup.Stats()
		jst := s.jobs.store.Stats()
		total, running := s.jobs.counts()
		snap.mu.Lock()
		snap.eng, snap.supReplans, snap.jst = est, sst.Replans, jst
		snap.storeErrors = s.jobs.storeErrors.Load()
		snap.jobsTotal, snap.jobsRunning = total, running
		snap.mu.Unlock()
	})

	// counterFn/gaugeFn adapt an unlabeled snapshot read into a
	// collector; the labeled families below keep their closures inline.
	counterFn := func(name, help string, get func(*scrapeSnapshot) uint64) {
		reg.RegisterCounterFunc(name, help, func(set obs.LabelSetter) {
			snap.mu.Lock()
			v := get(snap)
			snap.mu.Unlock()
			set.Set(float64(v))
		})
	}
	gaugeFn := func(name, help string, get func(*scrapeSnapshot) float64) {
		reg.RegisterGaugeFunc(name, help, func(set obs.LabelSetter) {
			snap.mu.Lock()
			v := get(snap)
			snap.mu.Unlock()
			set.Set(v)
		})
	}

	// Engine aggregates.
	counterFn("chainserve_engine_requests_total",
		"Planning requests accepted by the engine.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Requests })
	counterFn("chainserve_engine_cache_hits_total",
		"Plans served from the memo.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.CacheHits })
	counterFn("chainserve_engine_cache_misses_total",
		"Plans that ran a solver.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.CacheMisses })
	counterFn("chainserve_engine_cache_evictions_total",
		"Memo entries evicted.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Evictions })
	reg.RegisterCounterFunc("chainserve_engine_plans_total",
		"Planning requests per algorithm.", func(set obs.LabelSetter) {
			snap.mu.Lock()
			algs := snap.eng.Algorithms
			snap.mu.Unlock()
			for _, alg := range core.Algorithms() {
				set.Set(float64(algs[string(alg)]), string(alg))
			}
		}, "algorithm")
	gaugeFn("chainserve_engine_cache_hit_ratio",
		"Fraction of planning requests served from the memo.",
		func(sn *scrapeSnapshot) float64 { return sn.eng.HitRatio() })
	gaugeFn("chainserve_engine_cache_entries",
		"Current memo entries.",
		func(sn *scrapeSnapshot) float64 { return float64(sn.eng.Entries) })
	gaugeFn("chainserve_engine_shards",
		"Engine shards (per-shard kernel, memo and workers).",
		func(sn *scrapeSnapshot) float64 { return float64(len(sn.eng.Shards)) })

	// Per-shard breakdown. Solves/hits accumulate since boot: counters,
	// like their engine-wide cache_* equivalents; only the memo depth is
	// a gauge.
	reg.RegisterCounterFunc("chainserve_engine_shard_solves_total",
		"Plan requests that ran a solver, per engine shard.", func(set obs.LabelSetter) {
			snap.mu.Lock()
			shards := snap.eng.Shards
			snap.mu.Unlock()
			for _, sh := range shards {
				set.Set(float64(sh.CacheMisses), strconv.Itoa(sh.Shard))
			}
		}, "shard")
	reg.RegisterCounterFunc("chainserve_engine_shard_hits_total",
		"Plan requests served from the memo, per engine shard.", func(set obs.LabelSetter) {
			snap.mu.Lock()
			shards := snap.eng.Shards
			snap.mu.Unlock()
			for _, sh := range shards {
				set.Set(float64(sh.CacheHits), strconv.Itoa(sh.Shard))
			}
		}, "shard")
	reg.RegisterGaugeFunc("chainserve_engine_shard_depth",
		"Current memo entries, per engine shard.", func(set obs.LabelSetter) {
			snap.mu.Lock()
			shards := snap.eng.Shards
			snap.mu.Unlock()
			for _, sh := range shards {
				set.Set(float64(sh.Entries), strconv.Itoa(sh.Shard))
			}
		}, "shard")

	// Kernel scratch pools.
	counterFn("chainserve_kernel_solves_total",
		"Dynamic-program solves completed by the solver kernel.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Solves })
	counterFn("chainserve_kernel_scratch_reuses_total",
		"Solves served by a recycled scratch arena.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.ScratchReuses })
	counterFn("chainserve_kernel_scratch_fresh_total",
		"Solves that allocated a fresh scratch arena.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.ScratchFresh })
	gaugeFn("chainserve_kernel_scratch_buckets",
		"Scratch-pool size classes in use.",
		func(sn *scrapeSnapshot) float64 { return float64(len(sn.eng.Kernel.Buckets)) })
	reg.RegisterCounterFunc("chainserve_kernel_scratch_bucket_arenas_total",
		"Arena acquisitions per size class (cap = bucket capacity in tasks).",
		func(set obs.LabelSetter) {
			snap.mu.Lock()
			buckets := snap.eng.Kernel.Buckets
			snap.mu.Unlock()
			for _, b := range buckets {
				set.Set(float64(b.Reuses), strconv.Itoa(b.Cap), "reused")
				set.Set(float64(b.Fresh), strconv.Itoa(b.Cap), "fresh")
			}
		}, "cap", "kind")
	reg.RegisterCounterFunc("chainserve_kernel_bucket_solves_total",
		"Completed solves per scratch size class — the workload histogram behind bucket tuning.",
		func(set obs.LabelSetter) {
			snap.mu.Lock()
			buckets := snap.eng.Kernel.Buckets
			snap.mu.Unlock()
			for _, b := range buckets {
				set.Set(float64(b.Solves), strconv.Itoa(b.Cap))
			}
		}, "cap")
	// The two kernel families new to the registry plane: the exact
	// per-n solve histogram Engine.Tune consumes (KernelStats.Sizes is
	// capped at the hottest lengths, so the label universe can shift —
	// a gauge, reset every scrape) and the scratch-arena footprint per
	// size class.
	reg.RegisterGaugeFunc("chainckpt_kernel_size_solves",
		"Completed solves per exact window length (hottest lengths only) — the input to workload-aware bucket tuning.",
		func(set obs.LabelSetter) {
			snap.mu.Lock()
			sizes := snap.eng.Kernel.Sizes
			snap.mu.Unlock()
			set.Reset()
			for _, sz := range sizes {
				set.Set(float64(sz.Solves), strconv.Itoa(sz.N))
			}
		}, "n")
	reg.RegisterGaugeFunc("chainckpt_kernel_arena_bytes",
		"Bytes one scratch arena of each active size class pins (cap = arena capacity in tasks).",
		func(set obs.LabelSetter) {
			snap.mu.Lock()
			buckets := snap.eng.Kernel.Buckets
			snap.mu.Unlock()
			set.Reset()
			for _, b := range buckets {
				set.Set(float64(core.ArenaBytes(b.Cap)), strconv.Itoa(b.Cap))
			}
		}, "cap")

	// The in-kernel parallel solve (core.KernelParallelStats): how many
	// solves engaged a worker team, the tile traffic and helper busy
	// time behind them, and how often auto mode declined below the
	// crossover length.
	counterFn("chainckpt_kernel_parallel_solves_total",
		"Solves that engaged a worker team (SolveWorkers > 1, explicit or auto).",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Parallel.Solves })
	counterFn("chainckpt_kernel_parallel_tiles_total",
		"DP tiles dispatched to solver worker teams.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Parallel.Tiles })
	reg.RegisterCounterFunc("chainckpt_kernel_parallel_busy_seconds_total",
		"Cumulative seconds solver team members spent running tiles.",
		func(set obs.LabelSetter) {
			snap.mu.Lock()
			v := snap.eng.Kernel.Parallel.BusySeconds
			snap.mu.Unlock()
			set.Set(v)
		})
	counterFn("chainckpt_kernel_local_tiles_total",
		"Tiles claimed from the claimant's own span — the owner-computes fast path of the steal scheduler.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Parallel.LocalTiles })
	counterFn("chainckpt_kernel_steal_total",
		"Steal events in solver worker teams: half-span grabs plus leftover-tile claims by idle participants.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Parallel.Steals })
	counterFn("chainckpt_kernel_parallel_crossover_skips_total",
		"Auto-mode solves that stayed serial below the crossover window length.",
		func(sn *scrapeSnapshot) uint64 { return sn.eng.Kernel.Parallel.CrossoverSkips })
	gaugeFn("chainckpt_kernel_parallel_workers",
		"Live solver team helpers (idle helpers retire after a minute).",
		func(sn *scrapeSnapshot) float64 { return float64(sn.eng.Kernel.Parallel.Workers) })
	gaugeFn("chainckpt_kernel_auto_crossover",
		"Live auto-mode engagement threshold (window length); the built-in default unless retargeted.",
		func(sn *scrapeSnapshot) float64 { return float64(sn.eng.Kernel.Parallel.AutoCrossover) })

	// Jobs and the supervisor.
	counterFn("chainserve_jobs_total",
		"Execution jobs accepted.",
		func(sn *scrapeSnapshot) uint64 { return uint64(sn.jobsTotal) })
	counterFn("chainserve_supervisor_replans_total",
		"Adaptive suffix re-plans across all jobs.",
		func(sn *scrapeSnapshot) uint64 { return sn.supReplans })
	gaugeFn("chainserve_jobs_running",
		"Jobs currently executing.",
		func(sn *scrapeSnapshot) float64 { return float64(sn.jobsRunning) })

	// Durable job store.
	counterFn("chainserve_jobstore_appends_total",
		"Job lifecycle records appended to the durable store.",
		func(sn *scrapeSnapshot) uint64 { return sn.jst.Appends })
	counterFn("chainserve_jobstore_replayed_total",
		"Records applied during the boot-time journal replay.",
		func(sn *scrapeSnapshot) uint64 { return sn.jst.Replayed })
	counterFn("chainserve_jobstore_skipped_corrupt_total",
		"Damaged journal frames skipped during replay.",
		func(sn *scrapeSnapshot) uint64 { return sn.jst.SkippedCorrupt })
	counterFn("chainserve_jobstore_skipped_duplicates_total",
		"Duplicate transitions dropped during replay.",
		func(sn *scrapeSnapshot) uint64 { return sn.jst.SkippedDuplicates })
	counterFn("chainserve_jobstore_compactions_total",
		"Journal compactions into a snapshot.",
		func(sn *scrapeSnapshot) uint64 { return sn.jst.Compactions })
	counterFn("chainserve_jobstore_errors_total",
		"Durable store writes that failed.",
		func(sn *scrapeSnapshot) uint64 { return sn.storeErrors })
	gaugeFn("chainserve_jobstore_jobs",
		"Live records in the durable job store.",
		func(sn *scrapeSnapshot) float64 { return float64(sn.jst.Jobs) })
	gaugeFn("chainserve_jobstore_segments",
		"Journal segment files on disk.",
		func(sn *scrapeSnapshot) float64 { return float64(sn.jst.Segments) })
	reg.RegisterGaugeFunc("chainserve_uptime_seconds",
		"Seconds since start.", func(set obs.LabelSetter) {
			set.Set(time.Since(s.started).Round(time.Second).Seconds())
		})
}

// statusWriter records the final status code of a response, defaulting
// to 200 on an implicit WriteHeader. It forwards Flush so the NDJSON
// event stream keeps flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// instrument wraps one route: the per-route latency histogram and
// requests-by-status counter replace the old bare request count (which
// lumped /metrics scrapes into every error-rate denominator), and each
// request roots a trace whose span rides the context into the engine —
// engine.plan children land under it, and the id is echoed in
// X-Request-Id. The read-side plumbing routes (metrics, health, the
// trace dumps themselves) are measured but not traced, so scrapers
// cannot churn the request ring.
func (s *server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	traced := true
	switch route {
	case "metrics", "healthz", "traces", "trace_dump":
		traced = false
	}
	lat := s.routeLat.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.httpRequests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		if traced {
			id := "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
			if sp := s.obs.httpTracer.StartTrace(id, "http."+route); sp != nil {
				w.Header().Set("X-Request-Id", id)
				r = r.WithContext(obs.ContextWithSpan(r.Context(), sp))
				defer func() {
					sp.SetAttrInt("status", int64(sw.status()))
					sp.End()
				}()
			}
		}
		h(sw, r)
		lat.ObserveSince(start)
		s.routeReqs.With(route, strconv.Itoa(sw.status())).Inc()
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.obs.reg.WritePrometheus(w)
}

// handleJobSpans serves the span tree of one job's execution: the job
// root with its engine.plan / runtime.* children, offsets relative to
// the trace start. 404 for jobs the tracer never saw (adopted from a
// previous service life) or whose trace aged out of the ring.
func (s *server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.get(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	td := s.obs.jobTracer.Dump(id)
	if td == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no spans for job %q (executed in a previous service life, or evicted from the trace ring)", id))
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// handleTraceDump serves one trace by id — request traces ("req-N")
// and job traces ("job-N") alike, active or completed.
func (s *server) handleTraceDump(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td := s.obs.httpTracer.Dump(id)
	if td == nil {
		td = s.obs.jobTracer.Dump(id)
	}
	if td == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", id))
		return
	}
	writeJSON(w, http.StatusOK, td)
}

// handleTraceList indexes the dumpable traces.
func (s *server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"requests": s.obs.httpTracer.RecentIDs(),
		"jobs":     s.obs.jobTracer.RecentIDs(),
	})
}

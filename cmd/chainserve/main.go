// Command chainserve exposes the batch planning engine over HTTP/JSON,
// turning the library into a deployable service: clients POST planning
// requests (singly or in batches) and receive optimal schedules; health
// and metrics endpoints make it fit for a load balancer and a scraper.
//
// Usage:
//
//	chainserve [flags]
//
//	-addr host:port   listen address (default :8080)
//	-workers k        planning worker pool size (default GOMAXPROCS)
//	-solve-workers k  DP worker team per solve: 1 serial (default; the
//	                  pool is the parallelism), 0 auto (each solve
//	                  engages a team above the crossover length on
//	                  multi-core hosts), k>1 pins the width. Shards
//	                  share one CPU budget: size workers×solve-workers
//	                  to the core count. Never changes any plan.
//	-cache k          plan memo capacity in entries (default 4096, 0 disables)
//	-shards k         engine shards (default $CHAINSERVE_SHARDS, else the
//	                  smaller of GOMAXPROCS and the worker count; an
//	                  explicit value is rounded up to a power of two). Each
//	                  shard owns its own solver kernel, plan memo and
//	                  worker slice, with requests routed by instance
//	                  fingerprint — the knob that keeps the memo from
//	                  serializing heavy parallel traffic on one mutex.
//	-drain d          graceful-shutdown drain timeout (default 10s, or
//	                  $CHAINSERVE_DRAIN_TIMEOUT)
//	-store-dir path   durable job store root (default $CHAINSERVE_STORE_DIR;
//	                  empty keeps jobs in memory). With a store dir, job
//	                  lifecycles are write-ahead journaled and disk
//	                  checkpoints live under <dir>/jobs/<id>/, so a
//	                  restarted service lists finished jobs and resumes
//	                  interrupted ones from their last checkpoint with a
//	                  suffix-re-planned schedule.
//	-record-dir path  replay recording directory (default
//	                  $CHAINSERVE_RECORD_DIR; empty serves recordings over
//	                  the API only). Every finished job's event-sourced
//	                  recording — trace frames, estimator snapshots,
//	                  checkpoint digests, normalized lifecycle records —
//	                  is written as <dir>/<id>.json in canonical form; the
//	                  same bytes GET /v1/jobs/{id}/trace answers with.
//	-pprof-addr addr  serve net/http/pprof on a separate listener (empty,
//	                  the default, disables it — profiling endpoints never
//	                  share the public address).
//	-admit-concurrent k  admission slots for the write routes (default 64)
//	-admit-queue k    admission queue bound per priority class (default
//	                  256); beyond it requests shed with 429 + Retry-After
//	-slo-latency s    interactive latency SLO threshold in seconds
//	                  (default 1.0)
//	-slo-objective f  SLO objective, the fraction of requests that must
//	                  meet the threshold (default 0.99)
//	-burn-shed f      fast-window burn rate beyond which batch-class work
//	                  (jobs) is shed first (default 10; 0 disables)
//	-slo-sample d     SLO sampling / shed-coupling cadence (default 10s)
//	-selftune-interval d  periodic self-tune cadence: every d the tuner
//	                  calls Engine.Tune and retargets solve parallelism
//	                  from the live size histogram (default 0 = off;
//	                  POST /v1/admin/tune always forces a cycle)
//
// Endpoints:
//
//	POST /v1/plan            one planning request  -> one plan
//	POST /v1/plan/batch      {"requests":[...]}    -> {"responses":[...]}
//	POST /v1/replan          current schedule + observed rates -> schedule
//	                         with the suffix after the committed boundary
//	                         re-planned and spliced in
//	POST /v1/jobs            plan and execute a chain through the runtime
//	                         supervisor (fault-injecting runner; optional
//	                         adaptive re-planning)
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}       job status and final report
//	GET  /v1/jobs/{id}/events  NDJSON event stream, live until done
//	GET  /v1/jobs/{id}/trace   canonical replay recording (blocks until
//	                         the run is sealed; same spec + same seed =>
//	                         byte-identical body)
//	GET  /v1/jobs/{id}/spans   span tree of the job's execution (engine
//	                         planning, per-task runs, verifications,
//	                         checkpoint commits, recoveries, re-plans)
//	DELETE /v1/jobs/{id}     cancel a running job
//	GET  /v1/platforms       the Table I platforms
//	GET  /healthz            liveness probe
//	GET  /metrics            Prometheus text exposition, rendered from
//	                         the obs registry: every legacy counter plus
//	                         latency histograms for HTTP routes, engine
//	                         solves, checkpoint commits and journal
//	                         appends
//	GET  /debug/traces       recent request and job trace ids
//	GET  /debug/traces/{id}  one trace (request or job), as a span tree
//	GET  /v1/admin/slo       SLO tracker view: burn rates, bad fractions,
//	                         window quantiles, shedding state
//	GET  /v1/admin/tune      self-tuner decision history and the current
//	                         solve-worker target
//	POST /v1/admin/tune      force one self-tune cycle now; returns the
//	                         recorded tuning event
//
// A request names a Table I platform or embeds a custom one, and gives
// the chain either as explicit weights or as a (pattern, n, total)
// triple:
//
//	curl -s localhost:8080/v1/plan -d '{
//	  "algorithm": "ADMV", "platform": "Hera",
//	  "pattern": "uniform", "n": 50, "total": 25000
//	}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"chainckpt/internal/chain"
	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/obs"
	"chainckpt/internal/ops"
	"chainckpt/internal/platform"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
	"chainckpt/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainserve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "planning worker pool size (0 = GOMAXPROCS)")
	solveWorkers := flag.Int("solve-workers", 1,
		"DP worker team per solve (1 = serial, 0 = auto above the crossover, k>1 = pinned width)")
	cacheSize := flag.Int("cache", 4096, "plan memo capacity in entries (0 disables the memo)")
	shards := flag.Int("shards", defaultShards(os.Getenv),
		"engine shards, rounded up to a power of two (0 = min of cores and workers)")
	drain := flag.Duration("drain", defaultDrainTimeout(os.Getenv), "graceful-shutdown drain timeout")
	storeDir := flag.String("store-dir", os.Getenv("CHAINSERVE_STORE_DIR"),
		"durable job store root (empty = in-memory jobs)")
	recordDir := flag.String("record-dir", os.Getenv("CHAINSERVE_RECORD_DIR"),
		"replay recording directory (empty = recordings over the API only)")
	pprofAddr := flag.String("pprof-addr", "",
		"serve net/http/pprof on this address (empty = disabled)")
	opsDefaults := defaultOpsConfig()
	admitConcurrent := flag.Int("admit-concurrent", opsDefaults.AdmitConcurrent,
		"admission slots for the write routes (plan/replan/jobs)")
	admitQueue := flag.Int("admit-queue", opsDefaults.AdmitQueue,
		"admission queue bound per priority class; beyond it requests shed with 429")
	admitMin := flag.Int("admit-min", 0,
		"lower bound of the adaptive admission band (used with -admit-max)")
	admitMax := flag.Int("admit-max", 0,
		"upper bound of the adaptive admission band; >0 lets tuner cycles move the admission slot count between -admit-min and -admit-max from the shard queue-wait histograms (0 keeps -admit-concurrent fixed)")
	solveCrossover := flag.Int("solve-crossover", 0,
		"auto-mode parallel-solve crossover window length (0 = built-in default; also the tuner's large-solve boundary)")
	sloLatency := flag.Float64("slo-latency", opsDefaults.SLOThreshold,
		"interactive latency SLO threshold in seconds")
	sloObjective := flag.Float64("slo-objective", opsDefaults.SLOObjective,
		"interactive SLO objective (fraction of requests that must meet the threshold)")
	burnShed := flag.Float64("burn-shed", opsDefaults.BurnShed,
		"fast-window burn rate beyond which batch work is shed (0 disables)")
	sloSample := flag.Duration("slo-sample", opsDefaults.SampleInterval,
		"SLO sampling and shed-coupling cadence")
	selftuneInterval := flag.Duration("selftune-interval", 0,
		"periodic self-tune cadence (0 disables; POST /v1/admin/tune still forces cycles)")
	flag.Parse()

	memo := *cacheSize
	if memo <= 0 {
		memo = -1 // engine.Options uses negative for "disabled"
	}
	plane := newObsPlane()
	var store jobstore.Store = jobstore.NewMemory()
	if *storeDir != "" {
		journal, err := jobstore.Open(filepath.Join(*storeDir, "journal"),
			jobstore.Options{Metrics: plane.jobstore})
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		store = journal
	}
	// CLI semantics (1 serial, 0 auto) map onto engine.Options, where
	// zero is the compat serial default and negative selects auto.
	engineSolveWorkers := *solveWorkers
	if engineSolveWorkers == 0 {
		engineSolveWorkers = -1
	}
	opsCfg := opsDefaults
	opsCfg.AdmitConcurrent = *admitConcurrent
	opsCfg.AdmitQueue = *admitQueue
	opsCfg.AdmitMin = *admitMin
	opsCfg.AdmitMax = *admitMax
	opsCfg.SolveCrossover = *solveCrossover
	opsCfg.SLOThreshold = *sloLatency
	opsCfg.SLOObjective = *sloObjective
	opsCfg.BurnShed = *burnShed
	opsCfg.SampleInterval = *sloSample
	opsCfg.SelfTune = *selftuneInterval
	srv := newServerWithOps(engine.New(engine.Options{
		Workers: *workers, CacheSize: memo, Shards: *shards,
		SolveWorkers: engineSolveWorkers, Metrics: plane.engine,
	}), store, *storeDir, plane, opsCfg)
	defer srv.eng.Close()
	srv.startOps()
	defer srv.stopOps()
	if *pprofAddr != "" {
		// pprof stays off the public mux: a separate listener the
		// operator opts into, carrying DefaultServeMux's /debug/pprof/*.
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			log.Printf("pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}
	if *recordDir != "" {
		if err := os.MkdirAll(*recordDir, 0o755); err != nil {
			log.Fatal(err)
		}
		srv.recordDir = *recordDir
	}
	if resumed, adopted := srv.recoverJobs(context.Background()); resumed+adopted > 0 {
		log.Printf("recovered %d finished jobs, resumed %d interrupted jobs from %s",
			adopted, resumed, *storeDir)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("listening on %s (workers=%d, solve-workers=%d, cache=%d, shards=%d, drain=%s)",
		*addr, *workers, *solveWorkers, *cacheSize, len(srv.eng.Stats().Shards), *drain)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// Wait for Shutdown to finish draining in-flight handlers before the
	// deferred engine Close tears the pool down under them.
	<-shutdownDone
}

// defaultShards resolves the -shards default: the CHAINSERVE_SHARDS
// environment variable when it parses as a positive integer, 0 (= the
// engine's own default, min of cores and workers) otherwise. The
// -shards flag overrides both.
func defaultShards(getenv func(string) string) int {
	if v := getenv("CHAINSERVE_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
		log.Printf("ignoring invalid CHAINSERVE_SHARDS %q", v)
	}
	return 0
}

// defaultDrainTimeout resolves the graceful-drain default: the
// CHAINSERVE_DRAIN_TIMEOUT environment variable when it parses as a
// positive duration, 10s otherwise. The -drain flag overrides both.
func defaultDrainTimeout(getenv func(string) string) time.Duration {
	if v := getenv("CHAINSERVE_DRAIN_TIMEOUT"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			return d
		}
		log.Printf("ignoring invalid CHAINSERVE_DRAIN_TIMEOUT %q", v)
	}
	return 10 * time.Second
}

// server bundles the engine and runtime supervisor with the service's
// observability plane: the registry-backed counters below keep the
// .Add(1) call shape of the atomics they replaced, so every increment
// site reads unchanged while the values land in /metrics through the
// registry.
type server struct {
	eng     *engine.Engine
	sup     *runtime.Supervisor
	jobs    *jobManager
	obs     *obsPlane
	started time.Time
	// recordDir, when set, receives every sealed replay recording as
	// <id>.json in canonical form.
	recordDir string

	httpRequests *obs.Counter
	planErrors   *obs.Counter
	jobErrors    *obs.Counter
	jobsResumed  *obs.Counter
	replans      *obs.Counter
	routeReqs    *obs.CounterVec
	routeLat     *obs.HistogramVec
	reqSeq       atomic.Uint64

	// The ops plane (ops.go): admission gate ahead of the shard pools,
	// SLO burn-rate tracker over the route histograms, and the
	// metrics-driven self-tuner.
	opsCfg     opsConfig
	opsMetrics *ops.Metrics
	admission  *ops.Controller
	tracker    *ops.Tracker
	tuner      *ops.Tuner
	opsStop    chan struct{}
}

// newServer builds a server with volatile jobs — the store-less
// configuration tests use.
func newServer(eng *engine.Engine) *server {
	return newServerWithStore(eng, jobstore.NewMemory(), "")
}

// newServerWithStore builds a server whose job lifecycle is persisted
// through store, with per-job checkpoint directories under storeDir
// (empty = volatile checkpoints). Call recoverJobs afterwards to replay
// the store. The server gets its own observability plane; engine and
// jobstore histograms only fill when the caller wired the plane's
// metrics in at construction, as main does via newServerWithObs.
func newServerWithStore(eng *engine.Engine, store jobstore.Store, storeDir string) *server {
	return newServerWithObs(eng, store, storeDir, newObsPlane())
}

// newServerWithObs builds a server over an existing observability
// plane — the one whose engine/jobstore metric handles were passed to
// engine.New and jobstore.Open, so all layers share one registry.
func newServerWithObs(eng *engine.Engine, store jobstore.Store, storeDir string, plane *obsPlane) *server {
	return newServerWithOps(eng, store, storeDir, plane, defaultOpsConfig())
}

// newServerWithOps is newServerWithObs with an explicit ops-plane
// configuration (admission bounds, SLO objective, shedding coupling,
// self-tune cadence) — what main builds from flags.
func newServerWithOps(eng *engine.Engine, store jobstore.Store, storeDir string, plane *obsPlane, cfg opsConfig) *server {
	s := &server{
		eng:     eng,
		sup:     runtime.New(runtime.Options{Engine: eng, Metrics: plane.runtime}),
		jobs:    newJobManager(store, storeDir),
		obs:     plane,
		started: time.Now(),
	}
	s.initObs()
	s.initOps(cfg)
	return s
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/plan", s.instrument("plan", s.admit(ops.Interactive, s.handlePlan)))
	mux.HandleFunc("POST /v1/plan/batch", s.instrument("plan_batch", s.admit(ops.Interactive, s.handleBatch)))
	mux.HandleFunc("POST /v1/replan", s.instrument("replan", s.admit(ops.Interactive, s.handleReplan)))
	mux.HandleFunc("POST /v1/jobs", s.instrument("job_create", s.admit(ops.Batch, s.handleJobCreate)))
	mux.HandleFunc("GET /v1/jobs", s.instrument("job_list", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job_get", s.handleJobGet))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.instrument("job_trace", s.handleJobTrace))
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.instrument("job_spans", s.handleJobSpans))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument("job_cancel", s.handleJobCancel))
	mux.HandleFunc("GET /v1/platforms", s.instrument("platforms", s.handlePlatforms))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", s.handleTraceList))
	mux.HandleFunc("GET /debug/traces/{id}", s.instrument("trace_dump", s.handleTraceDump))
	mux.HandleFunc("GET /v1/admin/slo", s.instrument("admin_slo", s.handleSLO))
	mux.HandleFunc("GET /v1/admin/tune", s.instrument("admin_tune", s.handleTuneGet))
	mux.HandleFunc("POST /v1/admin/tune", s.instrument("admin_tune_force", s.handleTuneForce))
	return mux
}

// planRequest is the JSON shape of one planning request.
type planRequest struct {
	// Algorithm is ADV*, ADMV* or ADMV (default ADMV).
	Algorithm string `json:"algorithm,omitempty"`
	// Platform names a Table I platform; PlatformSpec embeds a custom one
	// instead (exactly one must be given).
	Platform     string             `json:"platform,omitempty"`
	PlatformSpec *platform.Platform `json:"platform_spec,omitempty"`
	// Weights gives the chain explicitly; or Pattern/N/Total generate it
	// (pattern uniform, decrease or highlow).
	Weights []float64 `json:"weights,omitempty"`
	Pattern string    `json:"pattern,omitempty"`
	N       int       `json:"n,omitempty"`
	Total   float64   `json:"total,omitempty"`
	// Sizes scales the platform costs per boundary (data volume).
	Sizes []float64 `json:"boundary_sizes,omitempty"`
	// MaxDiskCheckpoints bounds the disk checkpoints (0 = unlimited).
	MaxDiskCheckpoints int `json:"max_disk_checkpoints,omitempty"`
	// Tag is echoed in the response.
	Tag string `json:"tag,omitempty"`
}

// toEngine compiles the wire request into an engine request.
func (pr *planRequest) toEngine() (engine.Request, *chain.Chain, error) {
	var req engine.Request
	alg := core.Algorithm(pr.Algorithm)
	if pr.Algorithm == "" {
		alg = core.AlgADMV
	}

	var plat platform.Platform
	switch {
	case pr.Platform != "" && pr.PlatformSpec != nil:
		return req, nil, fmt.Errorf("give either platform or platform_spec, not both")
	case pr.Platform != "":
		p, err := platform.ByName(pr.Platform)
		if err != nil {
			return req, nil, err
		}
		plat = p
	case pr.PlatformSpec != nil:
		plat = *pr.PlatformSpec
		if err := plat.Validate(); err != nil {
			return req, nil, err
		}
	default:
		return req, nil, fmt.Errorf("missing platform (or platform_spec)")
	}

	var c *chain.Chain
	var err error
	switch {
	case len(pr.Weights) > 0:
		c, err = chain.FromWeights(pr.Weights...)
	case pr.Pattern != "":
		total := pr.Total
		if total == 0 {
			total = workload.PaperTotalWeight
		}
		var pat workload.Pattern
		if pat, err = parsePattern(pr.Pattern); err == nil {
			c, err = workload.Generate(pat, pr.N, total)
		}
	default:
		err = fmt.Errorf("missing chain: give weights or pattern/n/total")
	}
	if err != nil {
		return req, nil, err
	}

	opts := core.Options{MaxDiskCheckpoints: pr.MaxDiskCheckpoints}
	if pr.Sizes != nil {
		costs, err := platform.ScaledCosts(plat, pr.Sizes)
		if err != nil {
			return req, nil, err
		}
		opts.Costs = costs
	}
	return engine.Request{Algorithm: alg, Chain: c, Platform: plat, Opts: opts, Tag: pr.Tag}, c, nil
}

// parsePattern matches a pattern name case-insensitively.
func parsePattern(name string) (workload.Pattern, error) {
	for _, p := range workload.Patterns() {
		if strings.EqualFold(name, string(p)) {
			return p, nil
		}
	}
	return "", fmt.Errorf("unknown pattern %q (want Uniform, Decrease or HighLow)", name)
}

// planResponse is the JSON shape of one plan outcome.
type planResponse struct {
	Tag                string             `json:"tag,omitempty"`
	Algorithm          string             `json:"algorithm,omitempty"`
	ExpectedMakespan   float64            `json:"expected_makespan,omitempty"`
	NormalizedMakespan float64            `json:"normalized_makespan,omitempty"`
	Counts             *schedule.Counts   `json:"counts,omitempty"`
	Schedule           *schedule.Schedule `json:"schedule,omitempty"`
	Cached             bool               `json:"cached,omitempty"`
	Error              string             `json:"error,omitempty"`
}

func (s *server) respond(res *core.Result, c *chain.Chain, cached bool, tag string, err error) planResponse {
	if err != nil {
		s.planErrors.Add(1)
		return planResponse{Tag: tag, Error: err.Error()}
	}
	counts := res.Schedule.Counts()
	return planResponse{
		Tag:                tag,
		Algorithm:          string(res.Algorithm),
		ExpectedMakespan:   res.ExpectedMakespan,
		NormalizedMakespan: res.NormalizedMakespan(c),
		Counts:             &counts,
		Schedule:           res.Schedule,
		Cached:             cached,
	}
}

func (s *server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var pr planRequest
	if err := decodeJSON(r, &pr); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, c, err := pr.toEngine()
	if err != nil {
		s.planErrors.Add(1)
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := s.eng.PlanMany(r.Context(), []engine.Request{req})[0]
	out := s.respond(resp.Result, c, resp.Cached, pr.Tag, resp.Err)
	status := http.StatusOK
	if resp.Err != nil {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, out)
}

type batchRequest struct {
	Requests []planRequest `json:"requests"`
}

type batchResponse struct {
	Responses []planResponse `json:"responses"`
	ElapsedMS float64        `json:"elapsed_ms"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var br batchRequest
	if err := decodeJSON(r, &br); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(br.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	start := time.Now()
	reqs := make([]engine.Request, len(br.Requests))
	chains := make([]*chain.Chain, len(br.Requests))
	compileErrs := make([]error, len(br.Requests))
	for i := range br.Requests {
		reqs[i], chains[i], compileErrs[i] = br.Requests[i].toEngine()
	}
	// Plan the compilable subset as one engine batch; broken requests
	// keep their compile error and cost nothing.
	var live []engine.Request
	var liveIdx []int
	for i, err := range compileErrs {
		if err == nil {
			live = append(live, reqs[i])
			liveIdx = append(liveIdx, i)
		}
	}
	resps := make([]engine.Response, len(br.Requests))
	for j, resp := range s.eng.PlanMany(r.Context(), live) {
		resps[liveIdx[j]] = resp
	}
	out := batchResponse{Responses: make([]planResponse, len(br.Requests))}
	for i := range br.Requests {
		err := compileErrs[i]
		if err == nil {
			err = resps[i].Err
		}
		out.Responses[i] = s.respond(resps[i].Result, chains[i], resps[i].Cached, br.Requests[i].Tag, err)
	}
	out.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, platform.All())
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

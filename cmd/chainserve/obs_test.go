// Tests for the observability plane's HTTP surface: the /metrics
// exposition must survive the Prometheus text-format linter, a
// completed job must answer /v1/jobs/{id}/spans with a non-empty span
// tree, the debug trace index must cover request and job traces, and —
// the replay gate's guard — recordings must stay byte-identical with
// tracing on or off.
package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/obs"
)

// newInstrumentedServer wires the full plane the way main() does:
// engine, runtime and jobstore metrics all feeding one registry.
func newInstrumentedServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	plane := newObsPlane()
	eng := engine.New(engine.Options{Workers: 2, Metrics: plane.engine})
	t.Cleanup(eng.Close)
	srv := newServerWithObs(eng, jobstore.NewMemory(), "", plane)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestMetricsExpositionLintsClean drives real traffic — plans, a full
// job, error responses, a scrape — and then validates every line of
// /metrics against the Prometheus text format: HELP/TYPE present, no
// duplicate series, label escaping, histogram bucket monotonicity.
func TestMetricsExpositionLintsClean(t *testing.T) {
	_, ts := newInstrumentedServer(t)
	postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":20}`)
	postJSON(t, ts.URL+"/v1/plan", `{"platform":"nope"}`) // a 4xx for the route counter
	fetchTrace(t, ts.URL, recordedSpec)                   // a full job
	http.Get(ts.URL + "/metrics")                         // a prior scrape (collector deltas)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := readAll(t, resp)
	if problems := obs.Lint(strings.NewReader(body)); len(problems) > 0 {
		for _, p := range problems {
			t.Errorf("lint: %s", p)
		}
	}
	// The acceptance surface: latency histograms for HTTP routes,
	// engine solves, checkpoint commits and journal appends, plus the
	// legacy counters, all rendered from the registry.
	for _, want := range []string{
		`chainserve_http_request_seconds_bucket{route="plan",le="+Inf"}`,
		`chainserve_http_route_requests_total{route="plan",code="200"} 1`,
		`chainserve_http_route_requests_total{route="plan",code="400"} 1`,
		"# TYPE chainckpt_engine_solve_seconds histogram",
		"# TYPE chainckpt_runtime_ckpt_commit_seconds histogram",
		"# TYPE chainckpt_jobstore_append_seconds histogram",
		"chainserve_http_requests_total",
		"chainserve_engine_requests_total",
		"chainserve_kernel_solves_total",
		"chainckpt_kernel_arena_bytes",
		"chainckpt_kernel_parallel_tiles_total",
		"chainckpt_kernel_parallel_busy_seconds_total",
		"chainckpt_kernel_parallel_crossover_skips_total",
		"chainckpt_kernel_parallel_workers",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestJobSpansEndpoint checks the span tree of a completed job: a job
// root carrying runtime children with sane offsets.
func TestJobSpansEndpoint(t *testing.T) {
	_, ts := newInstrumentedServer(t)
	id, _ := fetchTrace(t, ts.URL, recordedSpec) // blocks until the run is sealed

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spans status %d: %s", resp.StatusCode, body)
	}
	var td obs.TraceDump
	if err := json.Unmarshal([]byte(body), &td); err != nil {
		t.Fatal(err)
	}
	if td.ID != id || td.Root == nil || td.Root.Name != "job" {
		t.Fatalf("dump: id=%q root=%+v", td.ID, td.Root)
	}
	if len(td.Root.Children) == 0 {
		t.Fatal("job root has no child spans")
	}
	names := map[string]bool{}
	var walk func(*obs.SpanDump)
	walk = func(s *obs.SpanDump) {
		names[s.Name] = true
		if s.StartNs < 0 || s.DurNs < 0 {
			t.Fatalf("span %s has negative offsets: %+v", s.Name, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(td.Root)
	for _, want := range []string{"runtime.task", "runtime.verify", "runtime.ckpt.commit"} {
		if !names[want] {
			t.Errorf("span tree missing %q (have %v)", want, names)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999/spans"); err != nil {
		t.Fatal(err)
	} else if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job spans: status %d, want 404", resp.StatusCode)
	}
}

// TestDebugTraceEndpoints checks the request-trace ring: a traced
// route answers with X-Request-Id, the index lists it, and the dump
// resolves both request and job ids.
func TestDebugTraceEndpoints(t *testing.T) {
	_, ts := newInstrumentedServer(t)
	resp, _ := postJSON(t, ts.URL+"/v1/plan",
		`{"algorithm":"ADMV","platform":"Hera","pattern":"uniform","n":16}`)
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("traced route answered without X-Request-Id")
	}
	jobID, _ := fetchTrace(t, ts.URL, recordedSpec)

	lr, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var index struct {
		Requests []string `json:"requests"`
		Jobs     []string `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(readAll(t, lr)), &index); err != nil {
		t.Fatal(err)
	}
	contains := func(ids []string, id string) bool {
		for _, v := range ids {
			if v == id {
				return true
			}
		}
		return false
	}
	if !contains(index.Requests, reqID) {
		t.Fatalf("trace index %v missing request %s", index.Requests, reqID)
	}
	if !contains(index.Jobs, jobID) {
		t.Fatalf("trace index %v missing job %s", index.Jobs, jobID)
	}

	for _, id := range []string{reqID, jobID} {
		dr, err := http.Get(ts.URL + "/debug/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, dr)
		if dr.StatusCode != http.StatusOK {
			t.Fatalf("trace %s: status %d: %s", id, dr.StatusCode, body)
		}
		var td obs.TraceDump
		if err := json.Unmarshal([]byte(body), &td); err != nil {
			t.Fatal(err)
		}
		if td.ID != id || td.Root == nil {
			t.Fatalf("trace %s: bad dump %+v", id, td)
		}
	}

	// The plan request's engine child hangs under the HTTP root span.
	dr, _ := http.Get(ts.URL + "/debug/traces/" + reqID)
	var td obs.TraceDump
	if err := json.Unmarshal([]byte(readAll(t, dr)), &td); err != nil {
		t.Fatal(err)
	}
	var plan *obs.SpanDump
	for _, c := range td.Root.Children {
		if c.Name == "engine.plan" {
			plan = c
		}
	}
	if plan == nil {
		t.Fatalf("request trace has no engine.plan child: %+v", td.Root)
	}
	// The solve itself is a child of the plan span, annotated with the
	// team width the kernel ran at (serial here: the engine default).
	var solve *obs.SpanDump
	for _, c := range plan.Children {
		if c.Name == "kernel.solve" {
			solve = c
		}
	}
	if solve == nil {
		t.Fatalf("engine.plan has no kernel.solve child: %+v", plan)
	}
	if got := solve.Attrs["workers"]; got != "1" {
		t.Errorf("kernel.solve workers attr = %q, want \"1\"", got)
	}
}

// TestRecordingUnchangedByTracing is the replay-purity regression:
// the same spec with the same explicit seed must produce byte-identical
// canonical recordings whether the run was traced and metered (the
// default plane) or completely uninstrumented — spans and histograms
// must never leak into the event-sourced capture.
func TestRecordingUnchangedByTracing(t *testing.T) {
	_, traced := newInstrumentedServer(t)

	bare := newObsPlane()
	bare.httpTracer, bare.jobTracer = nil, nil
	bare.engine, bare.runtime, bare.jobstore = nil, nil, nil
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	srv := newServerWithObs(eng, jobstore.NewMemory(), "", bare)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	_, withTracing := fetchTrace(t, traced.URL, recordedSpec)
	_, without := fetchTrace(t, ts.URL, recordedSpec)
	if string(withTracing) != string(without) {
		t.Fatal("recording bytes differ with tracing on vs off")
	}
}

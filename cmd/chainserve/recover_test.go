package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chainckpt/internal/engine"
	"chainckpt/internal/jobstore"
	"chainckpt/internal/runtime"
	"chainckpt/internal/schedule"
)

// resumeSpec is a job whose platform has a fail-stop rate high enough
// that the planner spreads interior disk checkpoints across the chain —
// without them there is nothing to resume from.
const resumeSpec = `{"algorithm":"ADMV*","platform_spec":{"name":"CrashLab",` +
	`"lambda_f":1e-4,"lambda_s":4e-4,"c_d":100,"c_m":10,"r_d":100,"r_m":10,` +
	`"v_star":10,"v":0.1,"recall":0.8},"pattern":"uniform","n":24,"total":24000,` +
	`"true_rate_scale_f":2,"seed":11}`

// TestCrashRecoveryResumesInterruptedJob is the end-to-end restart
// story. Life 1 admits a job exactly as the HTTP handler does (created
// and planned transitions journaled, checkpoints under the store root)
// and then dies at the second disk checkpoint: the context is cancelled
// inside the durable-progress hook and no terminal transition is ever
// appended — precisely the wreckage kill -9 leaves behind. Life 2 opens
// a fresh server over the same directory, replays the journal, and must
// resume the job from its last disk checkpoint with a suffix-re-planned
// schedule (no full-chain re-solve) and drive it to completion with a
// consistent event log.
func TestCrashRecoveryResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()

	// --- Life 1 -------------------------------------------------------
	st1, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Options{Workers: 2})
	srv1 := newServerWithStore(eng1, st1, dir)

	var jr jobRequest
	if err := json.Unmarshal([]byte(resumeSpec), &jr); err != nil {
		t.Fatal(err)
	}
	jr.normalize()
	req, c, err := jr.toEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng1.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(&jr)
	schedJSON, _ := json.Marshal(res.Schedule)
	fp := jobFingerprint(req)
	j1, seq, err := srv1.jobs.create(jobStatus{
		Algorithm: string(res.Algorithm), Predicted: res.ExpectedMakespan,
	}, spec, schedJSON, fp, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.snapshot().ID

	ck1, err := srv1.jobs.newCheckpointStore(id, jr.Retention)
	if err != nil {
		t.Fatal(err)
	}
	ctx, crash := context.WithCancel(context.Background())
	defer crash()
	disks := 0
	var stoppedAt int
	_, err = srv1.sup.Run(ctx, runtime.Job{
		Chain: c, Platform: req.Platform, Schedule: res.Schedule, Algorithm: req.Algorithm,
		Runner: jr.newRunner(req.Platform, seq), Store: ck1,
		Progress: func(b int, est runtime.EstimatorState, sched *schedule.Schedule) {
			srv1.jobs.progress(j1, b, est, sched)
			if disks++; disks == 2 && b < c.Len() {
				stoppedAt = b
				crash() // kill -9: the goroutine dies, no terminal record
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("life 1 ended with %v, want context.Canceled", err)
	}
	if stoppedAt <= 0 {
		t.Fatalf("job finished before the crash point (disks=%d)", disks)
	}
	// The abandoned record says running with committed progress.
	rec, ok := st1.Get(id)
	if !ok || rec.State != jobstore.StateRunning || rec.Progress == 0 {
		t.Fatalf("abandoned record: %+v ok=%v", rec, ok)
	}
	// A real crash closes nothing: st1 and eng1 are simply abandoned.

	// --- Life 2 -------------------------------------------------------
	st2, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	eng2 := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng2.Close)
	srv2 := newServerWithStore(eng2, st2, dir)
	resumed, adopted := srv2.recoverJobs(context.Background())
	if resumed != 1 || adopted != 0 {
		t.Fatalf("recoverJobs = (%d resumed, %d adopted), want (1, 0)", resumed, adopted)
	}
	// The suffix re-plan went through the kernel, not the engine: no
	// full-chain solve was submitted in life 2.
	if est := eng2.Stats(); est.Requests != 0 {
		t.Errorf("recovery submitted %d engine requests, want 0 (suffix re-plans only)", est.Requests)
	}
	if kst := eng2.Kernel().Stats(); kst.Solves != 1 {
		t.Errorf("kernel solves = %d, want exactly the one suffix re-plan", kst.Solves)
	}

	ts := httptest.NewServer(srv2.mux())
	t.Cleanup(ts.Close)
	final := waitForJob(t, ts.URL+"/v1/jobs/"+id)
	if final.Status != "done" || final.Report == nil {
		t.Fatalf("resumed job: %+v", final)
	}
	if final.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", final.Resumes)
	}
	if final.Report.ResumedFrom != stoppedAt {
		t.Errorf("resumed from %d, want the crash-point checkpoint %d", final.Report.ResumedFrom, stoppedAt)
	}

	// Event-log consistency: the trace of life 2 opens with the resume
	// event at the restored boundary, carries a monotone clock, and ends
	// with done at the final boundary.
	trace := final.Report.Trace
	if len(trace) == 0 || trace[0].Kind != "resume" || trace[0].Pos != stoppedAt {
		t.Fatalf("trace start: %+v", trace[:min(3, len(trace))])
	}
	for i := 1; i < len(trace); i++ {
		if trace[i].T < trace[i-1].T {
			t.Fatalf("clock ran backwards at event %d: %+v -> %+v", i, trace[i-1], trace[i])
		}
	}
	if last := trace[len(trace)-1]; last.Kind != "done" || last.Pos != c.Len() {
		t.Fatalf("trace end: %+v", last)
	}

	// The durable record reached done with a persisted (trace-free)
	// report and a strictly advancing version history.
	rec2, ok := st2.Get(id)
	if !ok || rec2.State != jobstore.StateDone || len(rec2.Report) == 0 {
		t.Fatalf("final record: %+v ok=%v", rec2, ok)
	}
	if rec2.Version <= rec.Version {
		t.Errorf("version did not advance across lives: %d -> %d", rec.Version, rec2.Version)
	}

	// And a third life sees a finished job: nothing to resume.
	st3, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st3.Close() })
	srv3 := newServerWithStore(eng2, st3, dir)
	if resumed, adopted := srv3.recoverJobs(context.Background()); resumed != 0 || adopted != 1 {
		t.Fatalf("third life recovered (%d, %d), want (0, 1)", resumed, adopted)
	}
	if got := srv3.jobs.list(); len(got) != 1 || got[0].Status != "done" {
		t.Fatalf("third-life listing: %+v", got)
	}
}

// crashSpecFor renders a crash-lab job spec with the given RNG seed.
// CD=1000 prices disk checkpoints high enough that the planner places
// them sparsely (interior ones plus the mandatory final), so every
// interior checkpoint is a distinct, meaningful crash point.
func crashSpecFor(seed uint64) string {
	return fmt.Sprintf(`{"algorithm":"ADMV*","platform_spec":{"name":"CrashLab",`+
		`"lambda_f":1e-4,"lambda_s":4e-4,"c_d":1000,"c_m":10,"r_d":1000,"r_m":10,`+
		`"v_star":10,"v":0.1,"recall":0.8},"pattern":"uniform","n":24,"total":24000,`+
		`"true_rate_scale_f":2,"seed":%d}`, seed)
}

// crashRecoveryAt runs one crash/recover cycle: life 1 admits the job
// exactly as the HTTP handler does and dies inside the durable-progress
// hook of its k-th disk checkpoint (no terminal transition — kill -9
// wreckage); life 2 opens a fresh server over the same directory,
// replays the journal, and must resume from exactly that boundary and
// finish. Failure messages carry a one-line repro built from the seed
// and crash point the journal now persists.
func crashRecoveryAt(t *testing.T, specJSON string, k int) {
	t.Helper()
	dir := t.TempDir()
	repro := fmt.Sprintf("repro: go test ./cmd/chainserve -run 'TestCrashRecoveryAtEveryCheckpoint' -count=1  # spec=%s crash_at_disk_ckpt=%d", specJSON, k)

	// --- Life 1: admit, run, die at the k-th disk checkpoint ----------
	st1, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Options{Workers: 2})
	srv1 := newServerWithStore(eng1, st1, dir)

	var jr jobRequest
	if err := json.Unmarshal([]byte(specJSON), &jr); err != nil {
		t.Fatal(err)
	}
	jr.normalize()
	req, c, err := jr.toEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng1.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := json.Marshal(&jr)
	schedJSON, _ := json.Marshal(res.Schedule)
	j1, seed, err := srv1.jobs.create(jobStatus{
		Algorithm: string(res.Algorithm), Predicted: res.ExpectedMakespan,
	}, spec, schedJSON, "", jr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.snapshot().ID
	if seed != jr.Seed {
		t.Fatalf("create derived seed %d, spec asked for %d\n%s", seed, jr.Seed, repro)
	}

	ck1, err := srv1.jobs.newCheckpointStore(id, jr.Retention)
	if err != nil {
		t.Fatal(err)
	}
	ctx, crash := context.WithCancel(context.Background())
	defer crash()
	disks := 0
	var stoppedAt int
	_, err = srv1.sup.Run(ctx, runtime.Job{
		Chain: c, Platform: req.Platform, Schedule: res.Schedule, Algorithm: req.Algorithm,
		Runner: jr.newRunner(req.Platform, seed), Store: ck1,
		Progress: func(b int, est runtime.EstimatorState, sched *schedule.Schedule) {
			srv1.jobs.progress(j1, b, est, sched)
			if disks++; disks == k && b < c.Len() {
				stoppedAt = b
				crash()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("life 1 ended with %v, want context.Canceled\n%s", err, repro)
	}
	if stoppedAt <= 0 {
		t.Fatalf("job finished before the crash point (disks=%d, k=%d)\n%s", disks, k, repro)
	}
	// The abandoned record carries the seed a repro needs.
	if rec, ok := st1.Get(id); !ok || rec.Seed != seed {
		t.Fatalf("abandoned record lost the seed: %+v ok=%v\n%s", rec, ok, repro)
	}

	// --- Life 2: recover over the same directory ----------------------
	st2, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	eng2 := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng2.Close)
	srv2 := newServerWithStore(eng2, st2, dir)
	if resumed, adopted := srv2.recoverJobs(context.Background()); resumed != 1 || adopted != 0 {
		t.Fatalf("recoverJobs = (%d resumed, %d adopted), want (1, 0)\n%s", resumed, adopted, repro)
	}
	ts := httptest.NewServer(srv2.mux())
	t.Cleanup(ts.Close)
	final := waitForJob(t, ts.URL+"/v1/jobs/"+id)
	if final.Status != "done" || final.Report == nil {
		t.Fatalf("resumed job: %+v\n%s", final, repro)
	}
	if final.Report.ResumedFrom != stoppedAt {
		t.Errorf("resumed from %d, want the crash-point checkpoint %d\n%s",
			final.Report.ResumedFrom, stoppedAt, repro)
	}
	if final.Report.Seed != seed {
		t.Errorf("resumed run reports seed %d, want %d\n%s", final.Report.Seed, seed, repro)
	}
	if last := final.Report.Trace[len(final.Report.Trace)-1]; last.Kind != "done" || last.Pos != c.Len() {
		t.Errorf("trace end: %+v\n%s", last, repro)
	}
}

// TestCrashRecoveryAtEveryCheckpoint generalizes the restart story into
// a seed-parameterized table: for each seed, the service is killed at
// every interior disk checkpoint the plan places (k = 1..N) and must
// recover from each one. The checkpoint count is read off the plan, not
// hard-coded, so a planner change reshapes the table instead of
// silently shrinking it.
func TestCrashRecoveryAtEveryCheckpoint(t *testing.T) {
	for _, seed := range []uint64{11, 23} {
		specJSON := crashSpecFor(seed)
		// Count the interior disk checkpoints of this spec's plan.
		var jr jobRequest
		if err := json.Unmarshal([]byte(specJSON), &jr); err != nil {
			t.Fatal(err)
		}
		jr.normalize()
		req, c, err := jr.toEngine()
		if err != nil {
			t.Fatal(err)
		}
		eng := engine.New(engine.Options{Workers: 1})
		res, err := eng.Plan(context.Background(), req)
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		interior := 0
		for pos := 1; pos < c.Len(); pos++ {
			if res.Schedule.At(pos).Has(schedule.Disk) {
				interior++
			}
		}
		if interior < 2 {
			t.Fatalf("crash spec plans only %d interior disk checkpoints; the table needs at least 2", interior)
		}
		for k := 1; k <= interior; k++ {
			t.Run(fmt.Sprintf("seed=%d/k=%d", seed, k), func(t *testing.T) {
				crashRecoveryAt(t, specJSON, k)
			})
		}
	}
}

// TestCrashRecoveryWithRetentionLimitedCheckpoints: a job whose spec
// bounds its disk-checkpoint retention must still resume after a hard
// stop — pruning old checkpoints shrinks the disk footprint but never
// touches the newest one, which is the only one a resume can use. The
// retention bound itself must survive the restart: it travels in the
// job spec, and resumeJob re-applies it to the reopened store.
func TestCrashRecoveryWithRetentionLimitedCheckpoints(t *testing.T) {
	dir := t.TempDir()
	const retention = 2
	spec := `{"algorithm":"ADMV*","platform_spec":{"name":"CrashLab",` +
		`"lambda_f":1e-4,"lambda_s":4e-4,"c_d":100,"c_m":10,"r_d":100,"r_m":10,` +
		`"v_star":10,"v":0.1,"recall":0.8},"pattern":"uniform","n":24,"total":24000,` +
		`"true_rate_scale_f":2,"seed":11,"retention":2}`

	st1, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := engine.New(engine.Options{Workers: 2})
	srv1 := newServerWithStore(eng1, st1, dir)

	var jr jobRequest
	if err := json.Unmarshal([]byte(spec), &jr); err != nil {
		t.Fatal(err)
	}
	jr.normalize()
	req, c, err := jr.toEngine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng1.Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, _ := json.Marshal(&jr)
	schedJSON, _ := json.Marshal(res.Schedule)
	j1, seq, err := srv1.jobs.create(jobStatus{Algorithm: string(res.Algorithm)}, specJSON, schedJSON, "", jr.Seed)
	if err != nil {
		t.Fatal(err)
	}
	id := j1.snapshot().ID

	ck1, err := srv1.jobs.newCheckpointStore(id, jr.Retention)
	if err != nil {
		t.Fatal(err)
	}
	ctx, crash := context.WithCancel(context.Background())
	defer crash()
	countCkpts := func() int {
		t.Helper()
		ents, err := os.ReadDir(srv1.jobs.ckptDir(id))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ".bin") {
				n++
			}
		}
		return n
	}
	disks := 0
	var stoppedAt int
	_, err = srv1.sup.Run(ctx, runtime.Job{
		Chain: c, Platform: req.Platform, Schedule: res.Schedule, Algorithm: req.Algorithm,
		Runner: jr.newRunner(req.Platform, seq), Store: ck1,
		Progress: func(b int, est runtime.EstimatorState, sched *schedule.Schedule) {
			srv1.jobs.progress(j1, b, est, sched)
			if got := countCkpts(); got > retention {
				t.Errorf("retention %d but %d checkpoint files on disk at boundary %d", retention, got, b)
			}
			if disks++; disks == 3 && b < c.Len() {
				stoppedAt = b
				crash() // hard stop: no terminal transition reaches the journal
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("life 1 ended with %v, want context.Canceled", err)
	}
	if stoppedAt <= 0 {
		t.Fatalf("job finished before the crash point (disks=%d)", disks)
	}
	// The wreckage the pruned store leaves behind: at most `retention`
	// checkpoint files, the newest at the crash boundary.
	if got := countCkpts(); got > retention {
		t.Fatalf("crash left %d checkpoint files, retention is %d", got, retention)
	}

	st2, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	eng2 := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng2.Close)
	srv2 := newServerWithStore(eng2, st2, dir)
	if resumed, adopted := srv2.recoverJobs(context.Background()); resumed != 1 || adopted != 0 {
		t.Fatalf("recoverJobs = (%d resumed, %d adopted), want (1, 0)", resumed, adopted)
	}
	ts := httptest.NewServer(srv2.mux())
	t.Cleanup(ts.Close)
	final := waitForJob(t, ts.URL+"/v1/jobs/"+id)
	if final.Status != "done" || final.Report == nil {
		t.Fatalf("retention-limited job did not resume to done: %+v", final)
	}
	if final.Report.ResumedFrom != stoppedAt {
		t.Errorf("resumed from %d, want the crash-point checkpoint %d", final.Report.ResumedFrom, stoppedAt)
	}
}

// TestRecoverMarksUnresumableJobFailed: a journal record whose spec
// cannot be recompiled must surface as a failed job, not vanish and not
// wedge recovery.
func TestRecoverMarksUnresumableJobFailed(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.Open(filepath.Join(dir, "journal"), jobstore.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	now := time.Now().UTC()
	if err := st.Append(jobstore.Record{
		ID: "job-1", Seq: 1, Version: 1, State: jobstore.StateRunning,
		CreatedAt: now, UpdatedAt: now,
		Spec: json.RawMessage(`{"platform":"NoSuchPlatform","weights":[1,2]}`),
	}); err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.Options{Workers: 1})
	t.Cleanup(eng.Close)
	srv := newServerWithStore(eng, st, dir)
	if resumed, adopted := srv.recoverJobs(context.Background()); resumed != 0 || adopted != 0 {
		t.Fatalf("recoverJobs = (%d, %d), want (0, 0)", resumed, adopted)
	}
	j, ok := srv.jobs.get("job-1")
	if !ok {
		t.Fatal("unresumable job vanished")
	}
	if snap := j.snapshot(); snap.Status != "failed" || snap.Error == "" {
		t.Fatalf("unresumable job status: %+v", snap)
	}
	rec, ok := st.Get("job-1")
	if !ok || rec.State != jobstore.StateFailed || rec.Error == "" {
		t.Fatalf("durable record: %+v ok=%v", rec, ok)
	}
}

// TestJobCancellation drives DELETE /v1/jobs/{id}: a paced job is
// cancelled mid-run and both the live status and the durable record end
// cancelled.
func TestJobCancellation(t *testing.T) {
	_, ts := newTestServer(t)
	// A sleep-paced job slow enough (~2.5 s) to be cancelled mid-run.
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"platform":"Hera","pattern":"uniform","n":10,"runner":"sleep","sleep_scale":1e-4}`)
	if resp.StatusCode != 202 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var created jobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp2); resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status %d", resp2.StatusCode)
	}
	final := waitForJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.Status != "cancelled" {
		t.Fatalf("final status %q, want cancelled", final.Status)
	}
	// Re-cancelling the now-terminal job is a conflict carrying the
	// terminal state, not a second success.
	resp3, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	body3 := readAll(t, resp3)
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409 (%s)", resp3.StatusCode, body3)
	}
	var terminal jobStatus
	if err := json.Unmarshal([]byte(body3), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Status != "cancelled" || terminal.ID != created.ID {
		t.Fatalf("conflict body: %+v, want the cancelled terminal state", terminal)
	}
}

// TestCancelFinishedJobConflict: DELETE on a job that completed on its
// own must answer 409 with the done state in the body — an
// at-least-once cancel client must not read "200, cancelled" off a job
// that actually succeeded.
func TestCancelFinishedJobConflict(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"platform":"Hera","pattern":"uniform","n":6,"runner":"nop"}`)
	if resp.StatusCode != 202 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var created jobStatus
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	final := waitForJob(t, ts.URL+"/v1/jobs/"+created.ID)
	if final.Status != "done" {
		t.Fatalf("job ended %q, want done", final.Status)
	}
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, resp2)
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("cancel-after-done status %d, want 409 (%s)", resp2.StatusCode, body2)
	}
	var terminal jobStatus
	if err := json.Unmarshal([]byte(body2), &terminal); err != nil {
		t.Fatal(err)
	}
	if terminal.Status != "done" || terminal.ID != created.ID {
		t.Fatalf("conflict body: %+v, want the done terminal state", terminal)
	}
	if terminal.Report == nil || terminal.Report.Trace != nil {
		t.Errorf("conflict body should carry the trace-free report summary, got %+v", terminal.Report)
	}
	// The job itself must be untouched by the failed cancel.
	if got := waitForJob(t, ts.URL+"/v1/jobs/"+created.ID); got.Status != "done" {
		t.Errorf("job status after conflict: %q", got.Status)
	}
}

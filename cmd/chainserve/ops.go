// The service's ops plane: the actuation layer over the observability
// plane. Admission control gates the write routes ahead of the shard
// pools (bounded queues, two priority classes, per-request deadlines
// honoring X-Deadline-Ms), the SLO tracker computes multi-window burn
// rates from the same route histograms /metrics exports, burn-coupled
// load-shedding drops batch work first when the fast window burns hot,
// and the self-tuner periodically retargets the engine from the live
// solve-size histogram. Admin views: GET /v1/admin/slo, GET+POST
// /v1/admin/tune.
package main

import (
	"context"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"

	"chainckpt/internal/obs"
	"chainckpt/internal/ops"
)

// opsConfig carries the ops-plane flags into server construction.
// defaultOpsConfig is generous enough that a test server never sheds
// unless it asks to.
type opsConfig struct {
	// AdmitConcurrent / AdmitQueue bound the admission controller.
	AdmitConcurrent int
	AdmitQueue      int
	// AdmitMin / AdmitMax, when AdmitMax > 0, enable the tuner's
	// adaptive-concurrency loop: each cycle nudges the live admission
	// bound within [AdmitMin, AdmitMax] from the shard-pool queue-wait
	// histogram (exported as chainckpt_admission_concurrent_limit).
	AdmitMin int
	AdmitMax int
	// RetryAfter is the backoff hint on 429 responses.
	RetryAfter time.Duration
	// SLOThreshold (seconds) and SLOObjective parameterize the
	// interactive latency SLO over the plan routes.
	SLOThreshold float64
	SLOObjective float64
	// BurnShed is the fast-window burn rate beyond which batch work is
	// shed (0 disables the coupling).
	BurnShed float64
	// SampleInterval is the SLO sampling/coupling cadence.
	SampleInterval time.Duration
	// SelfTune is the periodic self-tune cadence (0 disables the loop;
	// POST /v1/admin/tune still forces cycles).
	SelfTune time.Duration
	// TuneLargeN overrides the tuner's large-solve boundary (0 keeps
	// the solver's crossover default of 192). Tests lower it so the
	// regime switch is reachable with affordable window lengths.
	TuneLargeN int
	// TuneMinSamples overrides the solves a cycle must observe before
	// its regime decision is trusted (0 keeps the tuner default).
	TuneMinSamples uint64
	// SolveCrossover retargets the solver's auto-engage window length
	// on every shard kernel (0 keeps the built-in default); it also
	// becomes the tuner's large-solve boundary unless TuneLargeN pins
	// one explicitly.
	SolveCrossover int
}

func defaultOpsConfig() opsConfig {
	return opsConfig{
		AdmitConcurrent: 64,
		AdmitQueue:      256,
		RetryAfter:      time.Second,
		SLOThreshold:    1.0,
		SLOObjective:    0.99,
		BurnShed:        10,
		SampleInterval:  10 * time.Second,
	}
}

// interactiveRoutes are the routes the interactive SLO spans — the
// synchronous planning paths a caller is actively waiting on.
var interactiveRoutes = []string{"plan", "plan_batch", "replan"}

// initOps builds the admission controller, SLO tracker and self-tuner
// over the server's registry and engine. Called after initObs (the
// route histograms must exist). Background cadences start in startOps.
func (s *server) initOps(cfg opsConfig) {
	s.opsCfg = cfg
	reg := s.obs.reg
	s.opsMetrics = ops.NewMetrics(reg)
	s.admission = ops.NewController(ops.ControllerConfig{
		MaxConcurrent: cfg.AdmitConcurrent,
		MaxQueue:      cfg.AdmitQueue,
		RetryAfter:    cfg.RetryAfter,
	}, s.opsMetrics)

	// The interactive SLO reads the same per-route histograms /metrics
	// exports; merging keeps one budget across the three plan routes.
	src := func() obs.HistogramSnapshot {
		snaps := make([]obs.HistogramSnapshot, 0, len(interactiveRoutes))
		for _, route := range interactiveRoutes {
			snaps = append(snaps, s.routeLat.With(route).Snapshot())
		}
		return ops.MergeSnapshots(snaps...)
	}
	s.tracker = ops.NewTracker(ops.TrackerConfig{
		SampleInterval: cfg.SampleInterval,
	}, s.opsMetrics, ops.SLO{
		Name:      "interactive_latency",
		Threshold: cfg.SLOThreshold,
		Objective: cfg.SLOObjective,
		Source:    src,
	})

	// The adaptive-concurrency loop reads the same per-shard queue-wait
	// histograms /metrics exports, merged into one saturation signal.
	nshards := len(s.eng.Stats().Shards)
	queueWait := func() obs.HistogramSnapshot {
		snaps := make([]obs.HistogramSnapshot, 0, nshards)
		for i := 0; i < nshards; i++ {
			snaps = append(snaps, s.obs.engine.QueueWait.With(strconv.Itoa(i)).Snapshot())
		}
		return ops.MergeSnapshots(snaps...)
	}
	s.tuner = ops.NewTuner(ops.TunerConfig{
		LargeN:     cfg.TuneLargeN,
		MinSamples: cfg.TuneMinSamples,
		Crossover:  cfg.SolveCrossover,
		Admission:  s.admission,
		QueueWait:  queueWait,
		AdmitMin:   cfg.AdmitMin,
		AdmitMax:   cfg.AdmitMax,
		Sizes: func() []ops.SizeCount {
			sizes := s.eng.Stats().Kernel.Sizes
			out := make([]ops.SizeCount, len(sizes))
			for i, sz := range sizes {
				out[i] = ops.SizeCount{N: sz.N, Solves: sz.Solves}
			}
			return out
		},
	}, s.eng, s.opsMetrics)

	// Scrape-fresh burn gauges: /metrics triggers the same tick the
	// sampler cadence runs, so a scrape never shows stale burn rates.
	// Closely spaced samples coalesce in the tracker ring.
	reg.OnScrape(s.opsTick)
}

// opsTick is one observation/actuation step: sample the SLO sources,
// refresh the burn gauges, and couple the fast-window burn to batch
// shedding when the coupling is enabled.
func (s *server) opsTick() {
	s.tracker.Sample()
	if s.opsCfg.BurnShed > 0 {
		s.admission.SetShedding(s.tracker.MaxFastBurn() >= s.opsCfg.BurnShed)
	}
}

// startOps launches the background cadences: the SLO sampler (always)
// and the periodic self-tuner (when -selftune-interval > 0). stopOps
// ends them; both are idempotent enough for tests to call freely.
func (s *server) startOps() {
	if s.opsStop != nil {
		return
	}
	stop := make(chan struct{})
	s.opsStop = stop
	go func() {
		t := time.NewTicker(s.opsCfg.SampleInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.opsTick()
			case <-stop:
				return
			}
		}
	}()
	if s.opsCfg.SelfTune > 0 {
		go func() {
			t := time.NewTicker(s.opsCfg.SelfTune)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.tuner.RunCycle("periodic")
				case <-stop:
					return
				}
			}
		}()
	}
}

func (s *server) stopOps() {
	if s.opsStop != nil {
		close(s.opsStop)
		s.opsStop = nil
	}
	s.admission.Close()
}

// admit gates one route through the admission controller in the given
// class. The X-Deadline-Ms header becomes a context deadline covering
// both the queue wait and the handler itself, so a request that waited
// out its budget is failed instead of run for a client that left.
func (s *server) admit(class ops.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
			if d, err := strconv.Atoi(ms); err == nil && d > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(d)*time.Millisecond)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		release, err := s.admission.Admit(ctx, class)
		if err != nil {
			writeAdmissionError(w, err)
			return
		}
		defer release()
		h(w, r)
	}
}

// writeAdmissionError maps admission outcomes onto HTTP: sheds are 429
// with a Retry-After hint (back off, the service is protecting its
// SLO), deadline/cancel/closed are 503 (the request was accepted but
// could not be served).
func writeAdmissionError(w http.ResponseWriter, err error) {
	var shed *ops.ShedError
	if errors.As(err, &shed) {
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, err)
}

// handleSLO serves the SLO tracker's current view: per-objective fast
// and slow windows with bad fractions, burn rates and quantiles, plus
// whether batch shedding is currently engaged.
func (s *server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"slos":     s.tracker.Report(),
		"shedding": s.admission.Shedding(),
	})
}

// handleTuneGet serves the tuner's decision history and the engine's
// current solve-worker target.
func (s *server) handleTuneGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"solve_workers":  s.eng.SolveWorkers(),
		"bucket_workers": s.eng.BucketSolveWorkers(),
		"auto_crossover": s.eng.AutoCrossover(),
		"admit_limit":    s.admission.MaxConcurrent(),
		"events":         s.tuner.History(),
	})
}

// handleTuneForce runs one self-tune cycle immediately and returns its
// event — the operator's "retune now" button.
func (s *server) handleTuneForce(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tuner.RunCycle("forced"))
}

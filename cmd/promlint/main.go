// Command promlint validates a Prometheus text exposition read from
// stdin (or the files named as arguments) against the format rules the
// obs registry is expected to uphold: HELP and TYPE lines for every
// metric, no duplicate series, counter naming, label escaping,
// histogram bucket monotonicity and +Inf/_count agreement. The CI
// observability job pipes a live /metrics scrape through it, so a
// regression in the exposition writer fails the build instead of a
// scraper in production.
//
// Usage:
//
//	curl -s localhost:8080/metrics | promlint
//	promlint metrics.txt ...
//
// Exit status is 0 for a clean exposition, 1 when any problem was
// found, 2 on I/O errors.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"chainckpt/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("promlint: ")

	inputs := []struct {
		name string
		r    io.Reader
	}{}
	if len(os.Args) > 1 {
		for _, path := range os.Args[1:] {
			f, err := os.Open(path)
			if err != nil {
				log.Print(err)
				os.Exit(2)
			}
			defer f.Close()
			inputs = append(inputs, struct {
				name string
				r    io.Reader
			}{path, f})
		}
	} else {
		inputs = append(inputs, struct {
			name string
			r    io.Reader
		}{"<stdin>", os.Stdin})
	}

	failed := false
	for _, in := range inputs {
		problems := obs.Lint(in.r)
		for _, p := range problems {
			fmt.Printf("%s: %s\n", in.name, p)
		}
		if len(problems) > 0 {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

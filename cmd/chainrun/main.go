// Command chainrun executes a scheduled linear task graph through the
// runtime supervisor: it plans a schedule (or takes one implied by the
// flags), runs the chain through a task runner with two-tier
// checkpointing and full recovery semantics, and reports the observed
// makespan against the model's prediction. With -adaptive the
// supervisor re-plans the remaining suffix mid-run when the observed
// error rates drift from the model.
//
// Usage:
//
//	chainrun [flags]
//
//	-platform name   Hera | Atlas | Coastal | "Coastal SSD" (default Hera)
//	-pattern name    Uniform | Decrease | HighLow (default Uniform)
//	-n tasks         number of tasks (default 30)
//	-total seconds   total computational weight (default 25000)
//	-weights list    explicit comma-separated weights (overrides -pattern/-n/-total)
//	-alg name        ADV* | ADMV* | ADMV (default ADMV)
//	-runner name     sim | nop | sleep (default sim)
//	-scale-f f       true fail-stop rate = modeled rate × f (default 1)
//	-scale-s f       true silent-error rate = modeled rate × f (default 1)
//	-adaptive        re-plan the suffix when observed rates drift
//	-reps k          replications; mean ± CI is reported for k > 1 (default 1)
//	-seed s          fault-sequence seed (default 1)
//	-store dir       persist disk checkpoints under dir (default in-memory)
//	-resume          restore the latest valid checkpoint from -store and
//	                 continue from its boundary instead of starting fresh
//	                 (requires -store, single replication)
//	-trace           print the event log (single replication only)
//	-json            emit the report as JSON
//	-solve-workers k DP worker team for the initial solve: 1 serial
//	                 (default), 0 auto (engages above the crossover
//	                 length on multi-core hosts), k>1 pins the team
//	                 width; never changes the schedule, only the solve
//	                 wall clock
//	-stats           print a one-shot metrics summary to stderr at exit:
//	                 solve latency plus task, verification,
//	                 checkpoint-commit and fsync quantiles from the
//	                 runtime's metrics registry, and the ops-plane
//	                 families chainserve exports (chainckpt_slo_*,
//	                 chainckpt_admission_*, chainckpt_tuner_*)
//
// Example:
//
//	chainrun -platform Atlas -n 40 -scale-f 4 -scale-s 4 -adaptive -reps 100
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"chainckpt"
	"chainckpt/internal/stats"
)

// config is the compiled form of the command line, split out so tests
// can exercise the flag-to-job translation without running main.
type config struct {
	chain    *chainckpt.Chain
	plat     chainckpt.Platform
	alg      chainckpt.Algorithm
	runner   string
	scaleF   float64
	scaleS   float64
	adaptive bool
	reps     int
	seed     uint64
	storeDir string
	resume   bool
	trace    bool
	asJSON   bool
	// stats wires the run into a metrics registry and prints its
	// one-shot summary (solve latency, task/verify/checkpoint-commit
	// and fsync quantiles) to stderr at exit. Set by main after
	// compile, so the long-standing compile signature stays put.
	stats bool
	// solveWorkers is the DP worker team for the initial solve
	// (core.Options.SolveWorkers). Set by main after compile, like
	// stats.
	solveWorkers int
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainrun: ")

	platName := flag.String("platform", "Hera", "platform name from Table I")
	patName := flag.String("pattern", "Uniform", "workload pattern (Uniform, Decrease, HighLow)")
	n := flag.Int("n", 30, "number of tasks")
	total := flag.Float64("total", 25000, "total computational weight in seconds")
	weights := flag.String("weights", "", "explicit comma-separated task weights")
	algName := flag.String("alg", "ADMV", "algorithm (ADV*, ADMV*, ADMV)")
	runner := flag.String("runner", "sim", "task runner (sim, nop, sleep)")
	scaleF := flag.Float64("scale-f", 1, "true fail-stop rate as a multiple of the modeled rate")
	scaleS := flag.Float64("scale-s", 1, "true silent-error rate as a multiple of the modeled rate")
	adaptive := flag.Bool("adaptive", false, "re-plan the suffix when observed rates drift")
	reps := flag.Int("reps", 1, "replications")
	seed := flag.Uint64("seed", 1, "fault-sequence seed")
	storeDir := flag.String("store", "", "directory for persistent disk checkpoints")
	resume := flag.Bool("resume", false, "restore the latest checkpoint from -store and continue")
	trace := flag.Bool("trace", false, "print the event log (reps=1)")
	asJSON := flag.Bool("json", false, "emit JSON")
	statsDump := flag.Bool("stats", false,
		"print a one-shot metrics summary (solve, task, checkpoint-commit and fsync quantiles) to stderr at exit")
	solveWorkers := flag.Int("solve-workers", 1,
		"DP worker team for the initial solve (1 = serial, 0 = auto above the crossover, k>1 = pinned width)")
	flag.Parse()

	cfg, err := compile(*platName, *patName, *n, *total, *weights, *algName, *runner,
		*scaleF, *scaleS, *adaptive, *reps, *seed, *storeDir, *resume, *trace, *asJSON)
	if err != nil {
		log.Fatal(err)
	}
	cfg.stats = *statsDump
	cfg.solveWorkers = *solveWorkers
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func compile(platName, patName string, n int, total float64, weights, algName, runner string,
	scaleF, scaleS float64, adaptive bool, reps int, seed uint64,
	storeDir string, resume, trace, asJSON bool) (*config, error) {
	plat, err := chainckpt.PlatformByName(platName)
	if err != nil {
		return nil, err
	}
	c, err := buildChain(weights, patName, n, total)
	if err != nil {
		return nil, err
	}
	switch runner {
	case "sim", "nop", "sleep":
	default:
		return nil, fmt.Errorf("unknown runner %q (want sim, nop or sleep)", runner)
	}
	if scaleF <= 0 || scaleS <= 0 {
		return nil, fmt.Errorf("rate scales must be positive (got %g, %g)", scaleF, scaleS)
	}
	if reps < 1 {
		return nil, fmt.Errorf("reps must be at least 1, got %d", reps)
	}
	if trace && reps > 1 {
		return nil, fmt.Errorf("-trace needs -reps 1")
	}
	if resume && storeDir == "" {
		return nil, fmt.Errorf("-resume needs -store (a checkpoint directory to restore from)")
	}
	if resume && reps > 1 {
		return nil, fmt.Errorf("-resume needs -reps 1 (one interrupted run, one continuation)")
	}
	return &config{
		chain: c, plat: plat, alg: chainckpt.Algorithm(algName),
		runner: runner, scaleF: scaleF, scaleS: scaleS, adaptive: adaptive,
		reps: reps, seed: seed, storeDir: storeDir, resume: resume, trace: trace, asJSON: asJSON,
	}, nil
}

func buildChain(weights, pattern string, n int, total float64) (*chainckpt.Chain, error) {
	if weights != "" {
		parts := strings.Split(weights, ",")
		ws := make([]float64, 0, len(parts))
		for _, p := range parts {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight %q: %v", p, err)
			}
			ws = append(ws, w)
		}
		return chainckpt.ChainFromWeights(ws...)
	}
	switch pattern {
	case "Uniform":
		return chainckpt.Uniform(n, total)
	case "Decrease":
		return chainckpt.Decrease(n, total)
	case "HighLow":
		return chainckpt.HighLow(n, total)
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}

func (cfg *config) newRunner(seed uint64) chainckpt.TaskRunner {
	switch cfg.runner {
	case "nop":
		return chainckpt.NopTaskRunner{}
	case "sleep":
		return chainckpt.SleepTaskRunner{Scale: 1e-5}
	default:
		return chainckpt.NewMisspecifiedRunner(cfg.plat, cfg.scaleF, cfg.scaleS, seed)
	}
}

func run(cfg *config, w *os.File) error {
	ctx := context.Background()
	// The registry is only built under -stats; every instrument below
	// is nil otherwise and observes for free.
	var reg *chainckpt.MetricsRegistry
	var planH *chainckpt.MetricsHistogram
	var rm *chainckpt.RuntimeMetrics
	var admission *chainckpt.AdmissionController
	if cfg.stats {
		reg = chainckpt.NewMetricsRegistry()
		rm = chainckpt.NewRuntimeMetrics(reg)
		planH = reg.NewHistogram("chainrun_plan_seconds",
			"Wall-clock time of the initial schedule solve.", nil)
		// The ops-plane families chainserve exports — SLO burn rates,
		// admission outcomes, tuning events — so a one-shot run shows
		// the same picture as the server. The controller gates each
		// replication, the tracker reads the solve histogram, and a
		// final tuner cycle records the engine's regime at exit.
		opsM := chainckpt.NewOpsMetrics(reg)
		admission = chainckpt.NewAdmissionController(chainckpt.AdmissionConfig{}, opsM)
		tracker := chainckpt.NewSLOTracker(chainckpt.SLOTrackerConfig{}, opsM, chainckpt.SLO{
			Name:      "plan_latency",
			Threshold: 1.0,
			Objective: 0.99,
			Source:    planH.Snapshot,
		})
		tuner := chainckpt.NewTuner(chainckpt.TunerConfig{
			Sizes: func() []chainckpt.SizeCount {
				sizes := chainckpt.DefaultEngine().Stats().Kernel.Sizes
				out := make([]chainckpt.SizeCount, len(sizes))
				for i, sz := range sizes {
					out[i] = chainckpt.SizeCount{N: sz.N, Solves: sz.Solves}
				}
				return out
			},
		}, chainckpt.DefaultEngine(), opsM)
		defer func() {
			tracker.Sample()
			tuner.RunCycle("final")
			admission.Close()
			fmt.Fprintln(os.Stderr, "-- metrics (chainrun -stats) --")
			// The initial -solve-workers solve runs on the shared default
			// kernel (PlanWithOptions); engine traffic has its own. Sum
			// both so the counters reflect every team dispatch.
			kp := chainckpt.DefaultKernel().Stats().Parallel
			ep := chainckpt.DefaultEngine().Stats().Kernel.Parallel
			cross := kp.AutoCrossover
			if ep.AutoCrossover > cross {
				cross = ep.AutoCrossover
			}
			fmt.Fprintf(os.Stderr, "kernel parallel: solves=%d tiles=%d local_tiles=%d steals=%d crossover=%d\n",
				kp.Solves+ep.Solves, kp.Tiles+ep.Tiles, kp.LocalTiles+ep.LocalTiles, kp.Steals+ep.Steals, cross)
			reg.DumpText(os.Stderr)
		}()
	}
	planStart := time.Now()
	res, err := chainckpt.PlanWithOptions(cfg.alg, cfg.chain, cfg.plat,
		chainckpt.PlanOptions{SolveWorkers: cfg.solveWorkers})
	if err != nil {
		return err
	}
	planH.ObserveSince(planStart)
	sup := chainckpt.NewSupervisor(chainckpt.SupervisorOptions{Metrics: rm})

	execute := func(seed uint64, record bool) (*chainckpt.RunReport, error) {
		// A single run is interactive (someone is watching); replication
		// sweeps are batch. A nil controller (no -stats) admits freely.
		class := chainckpt.AdmissionInteractive
		if cfg.reps > 1 {
			class = chainckpt.AdmissionBatch
		}
		release, err := admission.Admit(ctx, class)
		if err != nil {
			return nil, err
		}
		defer release()
		job := chainckpt.RunJob{
			Chain: cfg.chain, Platform: cfg.plat, Schedule: res.Schedule,
			Algorithm: cfg.alg, Runner: cfg.newRunner(seed), Record: record,
			Resume: cfg.resume,
		}
		if cfg.storeDir != "" {
			store, err := chainckpt.NewCheckpointStore(cfg.storeDir)
			if err != nil {
				return nil, err
			}
			job.Store = store
		}
		if cfg.adaptive {
			return sup.RunAdaptive(ctx, job, chainckpt.AdaptPolicy{})
		}
		return sup.Run(ctx, job)
	}

	if cfg.reps == 1 {
		rep, err := execute(cfg.seed, cfg.trace)
		if err != nil {
			return err
		}
		if cfg.asJSON {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Fprintf(w, "platform:          %s\n", cfg.plat)
		fmt.Fprintf(w, "chain:             %s\n", cfg.chain)
		fmt.Fprintf(w, "schedule:          %s\n", res.Schedule)
		fmt.Fprintf(w, "model prediction:  %.2f s\n", res.ExpectedMakespan)
		if cfg.resume {
			fmt.Fprintf(w, "resumed from:      boundary %d of %d\n", rep.ResumedFrom, cfg.chain.Len())
		}
		fmt.Fprintf(w, "observed makespan: %.2f s (wall %s)\n", rep.Makespan, rep.Wall)
		fmt.Fprintf(w, "events:            %d tasks, %d fail-stop, %d silent detected, %d replans\n",
			rep.Events.TasksRun, rep.Events.FailStop, rep.Events.SilentDetected, rep.Events.Replans)
		fmt.Fprintf(w, "estimated rates:   lambda_f=%.3g lambda_s=%.3g\n",
			rep.LambdaFEstimate, rep.LambdaSEstimate)
		if cfg.trace {
			fmt.Fprintln(w)
			fmt.Fprint(w, chainckpt.FormatTrace(rep.Trace))
		}
		return nil
	}

	var acc stats.Welford
	var replans int64
	for r := 0; r < cfg.reps; r++ {
		rep, err := execute(cfg.seed+uint64(r), false)
		if err != nil {
			return err
		}
		acc.Add(rep.Makespan)
		replans += rep.Events.Replans
	}
	if cfg.asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"replications":     cfg.reps,
			"mean_makespan":    acc.Mean(),
			"halfwidth_95":     acc.HalfWidth(stats.Z95),
			"model_prediction": res.ExpectedMakespan,
			"replans":          replans,
		})
	}
	fmt.Fprintf(w, "platform:          %s\n", cfg.plat)
	fmt.Fprintf(w, "chain:             %s\n", cfg.chain)
	fmt.Fprintf(w, "model prediction:  %.2f s\n", res.ExpectedMakespan)
	fmt.Fprintf(w, "observed makespan: %.2f ± %.2f s over %d runs\n",
		acc.Mean(), acc.HalfWidth(stats.Z95), cfg.reps)
	fmt.Fprintf(w, "delta:             %+.2f%%\n", 100*(acc.Mean()/res.ExpectedMakespan-1))
	fmt.Fprintf(w, "replans:           %d\n", replans)
	return nil
}

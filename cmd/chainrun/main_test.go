package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCompileValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  string
		fn   func() (*config, error)
	}{
		{"bad platform", "unknown platform", func() (*config, error) {
			return compile("NoSuch", "Uniform", 10, 1000, "", "ADMV", "sim", 1, 1, false, 1, 1, "", false, false, false)
		}},
		{"bad runner", "unknown runner", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "", "ADMV", "warp", 1, 1, false, 1, 1, "", false, false, false)
		}},
		{"bad scale", "must be positive", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "", "ADMV", "sim", 0, 1, false, 1, 1, "", false, false, false)
		}},
		{"trace with reps", "-trace needs", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "", "ADMV", "sim", 1, 1, false, 5, 1, "", false, true, false)
		}},
		{"bad weights", "bad weight", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "1,zap,3", "ADMV", "sim", 1, 1, false, 1, 1, "", false, false, false)
		}},
		{"resume without store", "-resume needs -store", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "", "ADMV", "sim", 1, 1, false, 1, 1, "", true, false, false)
		}},
		{"resume with reps", "-resume needs -reps 1", func() (*config, error) {
			return compile("Hera", "Uniform", 10, 1000, "", "ADMV", "sim", 1, 1, false, 5, 1, "/tmp/x", true, false, false)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.fn()
			if err == nil || !strings.Contains(err.Error(), tc.err) {
				t.Fatalf("want error containing %q, got %v", tc.err, err)
			}
		})
	}
}

func TestRunSingleReplicationWithTrace(t *testing.T) {
	cfg, err := compile("Hera", "Uniform", 8, 8000, "", "ADMV*", "sim", 1, 1, false, 1, 42, "", false, true, false)
	if err != nil {
		t.Fatal(err)
	}
	out := captureRun(t, cfg)
	for _, want := range []string{"model prediction:", "observed makespan:", "estimated rates:", "done"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunReplicationsAdaptiveWithStore(t *testing.T) {
	dir := t.TempDir()
	cfg, err := compile("Hera", "Uniform", 8, 8000, "", "ADMV*", "sim", 4, 4, true, 3, 7, dir, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := captureRun(t, cfg)
	if !strings.Contains(out, "over 3 runs") || !strings.Contains(out, "replans:") {
		t.Errorf("aggregate output:\n%s", out)
	}
	// The store directory holds fingerprinted checkpoint files.
	files, err := filepath.Glob(filepath.Join(dir, "ckpt-*.bin"))
	if err != nil || len(files) == 0 {
		t.Errorf("no checkpoint files in -store dir (%v, %v)", files, err)
	}
}

// TestRunResumeContinuesFromStore runs a chain to completion with a
// persistent store, then re-runs with -resume: the second invocation
// restores the final checkpoint, executes nothing, and says where it
// resumed from.
func TestRunResumeContinuesFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg, err := compile("Hera", "Uniform", 8, 8000, "", "ADMV*", "nop", 1, 1, false, 1, 42, dir, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	captureRun(t, cfg)

	cfg2, err := compile("Hera", "Uniform", 8, 8000, "", "ADMV*", "nop", 1, 1, false, 1, 42, dir, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	out := captureRun(t, cfg2)
	if !strings.Contains(out, "resumed from:      boundary 8 of 8") {
		t.Errorf("resume output missing the restored boundary:\n%s", out)
	}
	if !strings.Contains(out, "events:            0 tasks") {
		t.Errorf("a resume at the final boundary should execute nothing:\n%s", out)
	}
}

func captureRun(t *testing.T, cfg *config) string {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run(cfg, f); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

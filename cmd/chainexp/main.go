// Command chainexp regenerates the paper's evaluation artifacts (Table I
// and Figures 5-8) together with this reproduction's validation (X1) and
// ablation (X2, X3) experiments. Text reports go to stdout; with -out,
// machine-readable CSV files are written to the given directory.
//
// Usage:
//
//	chainexp -exp all -out results/
//
//	-exp name   table1 | fig5 | fig6 | fig7 | fig8 | validation |
//	            ablation | heuristics | blind | pattern | robustness |
//	            sensitivity | all (default all)
//	-maxn n     largest chain length of the sweeps (default 50)
//	-step k     sweep step (default 1)
//	-reps r     Monte-Carlo replications for validation/robustness (default 20000)
//	-out dir    directory for CSV output (optional)
//	-html path  write a self-contained HTML report (figures + summary)
//	-workers k  planning worker pool size (default GOMAXPROCS)
//	-solve-workers k  DP worker team per solve: 1 serial (default), 0
//	            auto above the crossover length, k>1 pinned width —
//	            the knob for mega-chain sweeps where one big solve,
//	            not the sweep fan-out, dominates the wall clock
//
// All planning goes through the shared batch engine (internal/engine):
// sweeps run at instance-level parallelism and repeated instances are
// served from its memo.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"chainckpt/internal/core"
	"chainckpt/internal/engine"
	"chainckpt/internal/experiments"
	"chainckpt/internal/obs"
	"chainckpt/internal/ops"
	"chainckpt/internal/platform"
	"chainckpt/internal/report"
	"chainckpt/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainexp: ")

	exp := flag.String("exp", "all", "experiment to run")
	maxN := flag.Int("maxn", 50, "largest chain length")
	step := flag.Int("step", 1, "sweep step")
	reps := flag.Int("reps", 20000, "Monte-Carlo replications for validation")
	outDir := flag.String("out", "", "directory for CSV output")
	htmlPath := flag.String("html", "", "write an HTML report (figures 5/7/8 + summary) to this file")
	workers := flag.Int("workers", 0, "planning worker pool size (0 = GOMAXPROCS)")
	solveWorkers := flag.Int("solve-workers", 1,
		"DP worker team per solve (1 = serial, 0 = auto above the crossover, k>1 = pinned width)")
	statsDump := flag.Bool("stats", false,
		"print a one-shot metrics summary (per-shard solve latency quantiles, memo traffic, SLO/admission/tuner counters) at exit")
	flag.Parse()

	// Every sweep plans through the shared batch engine; sizing it here
	// also sizes the validation and robustness fan-outs. The memo means
	// overlapping experiments (fig5 and fig6, the HTML report) reuse
	// already-solved instances instead of replanning them. -stats wires
	// the engine into a metrics registry, so the run can be profiled
	// without a serving stack around it.
	var reg *obs.Registry
	var opsM *ops.Metrics
	var admission *ops.Controller
	var tracker *ops.Tracker
	var tuner *ops.Tuner
	if *statsDump {
		reg = obs.NewRegistry()
		// The ops-plane families chainserve exports, so a sweep profile
		// shows the same picture as the server: the controller gates
		// each experiment (batch class), the tracker reads the engine's
		// solve-latency histograms, and a final tuner cycle records the
		// regime the sweep's solve sizes landed in.
		opsM = ops.NewMetrics(reg)
		admission = ops.NewController(ops.ControllerConfig{}, opsM)
	}
	if *workers > 0 || *solveWorkers != 1 || *statsDump {
		// CLI semantics (1 serial, 0 auto) map onto engine.Options,
		// where zero is the compat serial default and negative selects
		// auto.
		engineSolveWorkers := *solveWorkers
		if engineSolveWorkers == 0 {
			engineSolveWorkers = -1
		}
		em := engine.NewMetrics(reg)
		eng := engine.New(engine.Options{
			Workers: *workers, SolveWorkers: engineSolveWorkers,
			Metrics: em,
		})
		engine.SetDefault(eng)
		if *statsDump {
			tracker = ops.NewTracker(ops.TrackerConfig{}, opsM, ops.SLO{
				Name:      "solve_latency",
				Threshold: 0.5,
				Objective: 0.95,
				Source: func() obs.HistogramSnapshot {
					nShards := len(eng.Stats().Shards)
					snaps := make([]obs.HistogramSnapshot, 0, nShards)
					for i := 0; i < nShards; i++ {
						snaps = append(snaps, em.SolveLatency.With(strconv.Itoa(i)).Snapshot())
					}
					return ops.MergeSnapshots(snaps...)
				},
			})
			tuner = ops.NewTuner(ops.TunerConfig{
				Sizes: func() []ops.SizeCount {
					sizes := eng.Stats().Kernel.Sizes
					out := make([]ops.SizeCount, len(sizes))
					for i, sz := range sizes {
						out[i] = ops.SizeCount{N: sz.N, Solves: sz.Solves}
					}
					return out
				},
			}, eng, opsM)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	cfg := experiments.Config{MaxTasks: *maxN, Step: *step}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		// Experiments are batch work: each passes the admission gate so
		// -stats profiles count them (a nil controller admits freely).
		release, err := admission.Admit(context.Background(), ops.Batch)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("==================== %s ====================\n", name)
		if err := f(); err != nil {
			release()
			log.Fatalf("%s: %v", name, err)
		}
		release()
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Println(experiments.Table1())
		return writeFile(*outDir, "table1.txt", experiments.Table1())
	})

	run("fig5", func() error {
		figs, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.NormalizedChart())
			for _, alg := range f.Algorithms() {
				fmt.Println(f.CountsTable(alg))
			}
			if err := writeFile(*outDir, f.ID+".csv", f.CSV()); err != nil {
				return err
			}
		}
		fmt.Println(experiments.GainSummary(figs))
		return nil
	})

	run("fig6", func() error {
		figs, err := experiments.Fig5(cfg)
		if err != nil {
			return err
		}
		for _, f := range figs {
			fmt.Println(f.Strip(core.AlgADMV))
			fmt.Println()
		}
		return nil
	})

	run("fig7", func() error { return twoPlatform(experiments.Fig7, cfg, *outDir) })
	run("fig8", func() error { return twoPlatform(experiments.Fig8, cfg, *outDir) })

	run("validation", func() error {
		n := 20
		if *maxN < n {
			n = *maxN
		}
		rows, err := experiments.Validation(n, *reps, 2016)
		if err != nil {
			return err
		}
		fmt.Println(experiments.ValidationTable(rows))
		return writeFile(*outDir, "validation.csv", experiments.ValidationCSV(rows))
	})

	run("ablation", func() error {
		n := 30
		if *maxN < n {
			n = *maxN
		}
		recalls := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95, 1}
		rp, err := experiments.RecallSweep(platform.CoastalSSD(), workload.PatternUniform, n, recalls)
		if err != nil {
			return err
		}
		fmt.Println("Recall sweep (ADMV on Coastal SSD, Uniform, n =", n, ")")
		fmt.Println(experiments.SweepTable("recall", rp))
		if err := writeFile(*outDir, "ablation_recall.csv", experiments.SweepCSV("recall", rp)); err != nil {
			return err
		}

		fracs := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}
		cp, err := experiments.PartialCostSweep(platform.CoastalSSD(), workload.PatternUniform, n, fracs)
		if err != nil {
			return err
		}
		fmt.Println("Partial-verification cost sweep (V = frac*V*, ADMV on Coastal SSD)")
		fmt.Println(experiments.SweepTable("V/V*", cp))
		if err := writeFile(*outDir, "ablation_vcost.csv", experiments.SweepCSV("v_frac", cp)); err != nil {
			return err
		}

		mults := []float64{0.25, 0.5, 1, 2, 4, 8, 16}
		rs, err := experiments.RateSweep(platform.Hera(), workload.PatternUniform, n, mults)
		if err != nil {
			return err
		}
		fmt.Println("Error-rate sweep (Hera, Uniform, n =", n, ")")
		fmt.Println(experiments.RateTable(rs))
		return nil
	})

	run("heuristics", func() error {
		n := 30
		if *maxN < n {
			n = *maxN
		}
		for _, tc := range []struct {
			plat platform.Platform
			pat  workload.Pattern
		}{
			{platform.Hera(), workload.PatternUniform},
			{platform.Hera(), workload.PatternHighLow},
			{platform.CoastalSSD(), workload.PatternUniform},
		} {
			rows, err := experiments.HeuristicComparison(tc.plat, tc.pat, n)
			if err != nil {
				return err
			}
			fmt.Printf("Heuristics vs optimal DPs on %s (%s pattern, n=%d):\n", tc.plat.Name, tc.pat, n)
			fmt.Println(experiments.HeuristicTable(rows))
			name := fmt.Sprintf("heuristics_%s_%s.csv",
				experiments.Slug(tc.plat.Name), experiments.Slug(string(tc.pat)))
			if err := writeFile(*outDir, name, experiments.HeuristicCSV(tc.plat.Name, tc.pat, n, rows)); err != nil {
				return err
			}
		}
		return nil
	})

	run("blind", func() error {
		n := 30
		if *maxN < n {
			n = *maxN
		}
		fmt.Println("Cost of planning while ignoring silent errors (ADMV* planner, exact oracle):")
		for _, plat := range platform.All() {
			bp, err := experiments.BlindPlanningPenalty(plat, workload.PatternUniform, n)
			if err != nil {
				return err
			}
			fmt.Printf("  %-12s aware %.2f s, blind %.2f s  ->  +%.2f%%\n",
				bp.Platform, bp.Aware, bp.Blind, bp.PenaltyPct)
		}
		return nil
	})

	run("pattern", func() error {
		n := 50
		if *maxN < n {
			n = *maxN
		}
		rows, err := experiments.PatternComparison(n)
		if err != nil {
			return err
		}
		fmt.Printf("First-order periodic pattern (companion paper [7]) vs exact DP, n=%d:\n", n)
		fmt.Println(experiments.PatternTable(rows))
		return writeFile(*outDir, "pattern_vs_dp.csv", experiments.PatternCSV(rows))
	})

	run("robustness", func() error {
		n := 30
		if *maxN < n {
			n = *maxN
		}
		shapes := []float64{0.5, 0.7, 1, 1.5, 2}
		rows, err := experiments.Robustness(platform.Hera(), workload.PatternUniform, n,
			shapes, *reps, 2016)
		if err != nil {
			return err
		}
		fmt.Printf("Exponential-optimal schedule under Weibull arrivals (Hera, Uniform, n=%d, same MTBFs):\n", n)
		fmt.Println(experiments.RobustnessTable(rows))
		return writeFile(*outDir, "robustness.csv", experiments.RobustnessCSV("Hera", rows))
	})

	run("sensitivity", func() error {
		n := 30
		if *maxN < n {
			n = *maxN
		}
		for _, plat := range []platform.Platform{platform.Hera(), platform.CoastalSSD()} {
			rows, err := experiments.SensitivityReport(plat, workload.PatternUniform, n)
			if err != nil {
				return err
			}
			fmt.Printf("Elasticities of the ADMV-optimal makespan on %s (Uniform, n=%d):\n", plat.Name, n)
			fmt.Println(experiments.SensitivityTable(rows))
			name := "sensitivity_" + experiments.Slug(plat.Name) + ".csv"
			if err := writeFile(*outDir, name, experiments.SensitivityCSV(plat.Name, rows)); err != nil {
				return err
			}
		}
		return nil
	})

	if *htmlPath != "" {
		var figs []*experiments.Figure
		for _, f := range []func(experiments.Config) ([]*experiments.Figure, error){
			experiments.Fig5, experiments.Fig7, experiments.Fig8,
		} {
			batch, err := f(cfg)
			if err != nil {
				log.Fatal(err)
			}
			figs = append(figs, batch...)
		}
		out, err := os.Create(*htmlPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.Render(out, report.FromFigures("chainckpt — reproduced evaluation", figs)); err != nil {
			out.Close()
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote HTML report to %s\n", *htmlPath)
	}

	if *statsDump {
		tracker.Sample()
		tuner.RunCycle("final")
		admission.Close()
		fmt.Println("==================== metrics ====================")
		par := engine.Default().Stats().Kernel.Parallel
		fmt.Printf("kernel parallel: solves=%d tiles=%d local_tiles=%d steals=%d crossover=%d\n",
			par.Solves, par.Tiles, par.LocalTiles, par.Steals, par.AutoCrossover)
		reg.DumpText(os.Stdout)
	}
}

func twoPlatform(f func(experiments.Config) ([]*experiments.Figure, error), cfg experiments.Config, outDir string) error {
	figs, err := f(cfg)
	if err != nil {
		return err
	}
	for _, fig := range figs {
		fmt.Println(fig.NormalizedChart())
		fmt.Println(fig.CountsTable(core.AlgADMV))
		fmt.Println(fig.Strip(core.AlgADMV))
		fmt.Println()
		if err := writeFile(outDir, fig.ID+".csv", fig.CSV()); err != nil {
			return err
		}
	}
	fmt.Println(experiments.GainSummary(figs))
	return nil
}

func writeFile(dir, name, content string) error {
	if dir == "" {
		return nil
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}

// Command chainplan computes the optimal resilience schedule for a linear
// task graph and prints it.
//
// Usage:
//
//	chainplan [flags]
//
//	-platform name   Hera | Atlas | Coastal | "Coastal SSD" (default Hera)
//	-pattern name    Uniform | Decrease | HighLow (default Uniform)
//	-n tasks         number of tasks (default 50)
//	-total seconds   total computational weight (default 25000)
//	-weights list    explicit comma-separated weights (overrides -pattern/-n/-total)
//	-alg name        ADV* | ADMV* | ADMV (default ADMV)
//	-maxdisk k       disk-checkpoint budget (0 = unlimited)
//	-instance path   load chain/platform/costs from an instance file
//	-save path       write the instance (with the planned schedule) back
//	-json            emit the result as JSON instead of text
//
// Example:
//
//	chainplan -platform Atlas -pattern HighLow -n 50 -alg ADMV
//	chainplan -instance run.json -save planned.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"chainckpt"
	"chainckpt/internal/instance"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainplan: ")

	platName := flag.String("platform", "Hera", "platform name from Table I")
	patName := flag.String("pattern", "Uniform", "workload pattern (Uniform, Decrease, HighLow)")
	n := flag.Int("n", 50, "number of tasks")
	total := flag.Float64("total", 25000, "total computational weight in seconds")
	weights := flag.String("weights", "", "explicit comma-separated task weights")
	algName := flag.String("alg", "ADMV", "algorithm (ADV*, ADMV*, ADMV)")
	maxDisk := flag.Int("maxdisk", 0, "disk-checkpoint budget (0 = unlimited)")
	instPath := flag.String("instance", "", "load chain/platform/costs from an instance file")
	savePath := flag.String("save", "", "write the instance with the planned schedule")
	asJSON := flag.Bool("json", false, "emit JSON")
	flag.Parse()

	var (
		c     *chainckpt.Chain
		plat  chainckpt.Platform
		costs *chainckpt.Costs
		inst  *instance.Instance
		err   error
	)
	if *instPath != "" {
		inst, err = instance.LoadFile(*instPath)
		if err != nil {
			log.Fatal(err)
		}
		c, plat = inst.Chain, inst.Platform
		if costs, err = inst.Costs(); err != nil {
			log.Fatal(err)
		}
	} else {
		if plat, err = chainckpt.PlatformByName(*platName); err != nil {
			log.Fatal(err)
		}
		if c, err = buildChain(*weights, *patName, *n, *total); err != nil {
			log.Fatal(err)
		}
	}
	res, err := chainckpt.PlanWithOptions(chainckpt.Algorithm(*algName), c, plat,
		chainckpt.PlanOptions{Costs: costs, MaxDiskCheckpoints: *maxDisk})
	if err != nil {
		log.Fatal(err)
	}
	if *savePath != "" {
		out := &instance.Instance{Name: "chainplan", Chain: c, Platform: plat, Schedule: res.Schedule}
		if inst != nil {
			out.Name, out.Sizes = inst.Name, inst.Sizes
		}
		if err := out.SaveFile(*savePath); err != nil {
			log.Fatal(err)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}

	counts := res.Schedule.Counts()
	fmt.Printf("platform:            %s\n", plat)
	fmt.Printf("chain:               %s\n", c)
	fmt.Printf("algorithm:           %s\n", res.Algorithm)
	fmt.Printf("expected makespan:   %.2f s\n", res.ExpectedMakespan)
	fmt.Printf("normalized makespan: %.5f\n", res.NormalizedMakespan(c))
	fmt.Printf("mechanisms:          %d disk ckpt, %d memory ckpt, %d guaranteed verif, %d partial verif\n",
		counts.Disk, counts.Memory, counts.Guaranteed, counts.Partial)
	fmt.Printf("schedule:            %s\n\n", res.Schedule)
	fmt.Println(res.Schedule.Strip())
}

func buildChain(weights, pattern string, n int, total float64) (*chainckpt.Chain, error) {
	if weights != "" {
		parts := strings.Split(weights, ",")
		ws := make([]float64, 0, len(parts))
		for _, p := range parts {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("bad weight %q: %v", p, err)
			}
			ws = append(ws, w)
		}
		return chainckpt.ChainFromWeights(ws...)
	}
	switch pattern {
	case "Uniform":
		return chainckpt.Uniform(n, total)
	case "Decrease":
		return chainckpt.Decrease(n, total)
	case "HighLow":
		return chainckpt.HighLow(n, total)
	default:
		return nil, fmt.Errorf("unknown pattern %q", pattern)
	}
}

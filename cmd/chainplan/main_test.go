package main

import "testing"

func TestBuildChainExplicitWeights(t *testing.T) {
	c, err := buildChain("100, 200,300", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.TotalWeight() != 600 {
		t.Errorf("chain = %v", c)
	}
}

func TestBuildChainRejectsBadWeights(t *testing.T) {
	if _, err := buildChain("1,two,3", "", 0, 0); err == nil {
		t.Error("non-numeric weight should fail")
	}
	if _, err := buildChain("1,-2", "", 0, 0); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestBuildChainPatterns(t *testing.T) {
	for _, pattern := range []string{"Uniform", "Decrease", "HighLow"} {
		c, err := buildChain("", pattern, 10, 1000)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
		if c.Len() != 10 {
			t.Errorf("%s: len = %d", pattern, c.Len())
		}
	}
	if _, err := buildChain("", "Spiral", 10, 1000); err == nil {
		t.Error("unknown pattern should fail")
	}
}

// Command benchjson converts `go test -bench` output into a JSON
// document, so benchmark runs can be committed as machine-readable
// artifacts (BENCH_solver.json at the repo root) and uploaded from CI,
// giving the perf trajectory of the solver kernel a durable record.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op,
// allocs/op — plus testing.B.ReportMetric custom units, and tracks the
// goos/goarch/pkg/cpu headers go test prints per package.
//
// With -baseline FILE, benchjson additionally gates the run against a
// committed report (the CI bench-regression step): it exits non-zero
// when the warm-kernel allocation counts (BenchmarkKernelPlan/*
// allocs/op) or the sharded-engine contention advantage
// (BenchmarkEngineContention single/gN over sharded/gN ns/op) regress
// more than -tolerance (default 15%) versus the baseline. The
// contention check compares the single/sharded throughput *ratio*
// within each run, not absolute ns/op, so a baseline recorded on one
// machine still gates a run on different hardware; benchmark names are
// matched with the GOMAXPROCS "-N" suffix stripped for the same reason.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output and returns the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a header like "BenchmarkFoo" alone, or garbage
		}
		b := Benchmark{Package: pkg, Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	return rep, nil
}

// trimCPUSuffix strips the "-N" GOMAXPROCS suffix go test appends to
// benchmark names (absent when GOMAXPROCS is 1), so reports recorded on
// machines with different core counts still match up.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// indexByName maps both the raw and suffix-trimmed name of every
// benchmark to its result (raw names win on collision).
func indexByName(rep *Report) map[string]Benchmark {
	m := make(map[string]Benchmark, 2*len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		if t := trimCPUSuffix(b.Name); t != b.Name {
			if _, ok := m[t]; !ok {
				m[t] = b
			}
		}
	}
	for _, b := range rep.Benchmarks {
		m[b.Name] = b
	}
	return m
}

// lookup resolves a baseline benchmark name in the current run's index,
// tolerating a GOMAXPROCS suffix on either side.
func lookup(idx map[string]Benchmark, name string) (Benchmark, bool) {
	if b, ok := idx[name]; ok {
		return b, true
	}
	b, ok := idx[trimCPUSuffix(name)]
	return b, ok
}

// contentionRatio returns the single-shard/sharded ns-per-op ratio of
// BenchmarkEngineContention at one goroutine-count label (the run's
// measured sharding speedup — machine-relative, hence comparable across
// reports recorded on different hardware).
func contentionRatio(idx map[string]Benchmark, gLabel string) (float64, bool) {
	single, ok1 := lookup(idx, "BenchmarkEngineContention/single/"+gLabel)
	sharded, ok2 := lookup(idx, "BenchmarkEngineContention/sharded/"+gLabel)
	if !ok1 || !ok2 || single.NsPerOp <= 0 || sharded.NsPerOp <= 0 {
		return 0, false
	}
	return single.NsPerOp / sharded.NsPerOp, true
}

// parallelSpeedup returns the serial/team ns-per-op ratio of one
// kernel solve benchmark family (BenchmarkKernelParallelSolve or
// BenchmarkKernelStealSolve) at one shape label — "n2000", or the
// "skew" lane of the steal bench (the run's measured in-kernel parallel
// speedup — machine-relative like the contention ratio, so a 1-core
// baseline recording ~1.0 still gates a 1-core run, and a multi-core
// runner is held to its own curve).
func parallelSpeedup(idx map[string]Benchmark, bench, shapeLabel, wLabel string) (float64, bool) {
	serial, ok1 := lookup(idx, bench+"/"+shapeLabel+"/w1")
	team, ok2 := lookup(idx, bench+"/"+shapeLabel+"/"+wLabel)
	if !ok1 || !ok2 || serial.NsPerOp <= 0 || team.NsPerOp <= 0 {
		return 0, false
	}
	return serial.NsPerOp / team.NsPerOp, true
}

// largestParallelN returns the biggest chain-length label ("n4000")
// present among a report's results for one benchmark family.
func largestParallelN(rep *Report, bench string) (string, bool) {
	best := -1
	for _, b := range rep.Benchmarks {
		name := trimCPUSuffix(b.Name)
		rest, ok := strings.CutPrefix(name, bench+"/n")
		if !ok {
			continue
		}
		digits, _, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(digits)
		if err == nil && n > best {
			best = n
		}
	}
	if best < 0 {
		return "", false
	}
	return fmt.Sprintf("n%d", best), true
}

// checkRegression compares the current report against the committed
// baseline and returns one message per regression beyond tol (a
// fraction, e.g. 0.15).
func checkRegression(cur, base *Report, tol float64) []string {
	var problems []string
	curIdx := indexByName(cur)

	// Warm-kernel allocation counts are machine-independent: pooled
	// solves must stay pooled.
	for _, bb := range base.Benchmarks {
		if !strings.HasPrefix(trimCPUSuffix(bb.Name), "BenchmarkKernelPlan/") {
			continue
		}
		cb, ok := lookup(curIdx, bb.Name)
		if !ok {
			continue
		}
		if cb.AllocsPerOp > bb.AllocsPerOp*(1+tol) {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/op %.1f vs baseline %.1f (>%+.0f%%) — the warm kernel stopped pooling",
				bb.Name, cb.AllocsPerOp, bb.AllocsPerOp, 100*tol))
		}
	}

	// The serial lane of the parallel- and steal-solve benchmarks must
	// stay pooled too: a worker team thrashing fresh arenas shows up
	// here first.
	for _, bb := range base.Benchmarks {
		name := trimCPUSuffix(bb.Name)
		if !strings.HasPrefix(name, "BenchmarkKernelParallelSolve/") &&
			!strings.HasPrefix(name, "BenchmarkKernelStealSolve/") {
			continue
		}
		if !strings.HasSuffix(name, "/w1") {
			continue
		}
		cb, ok := lookup(curIdx, bb.Name)
		if !ok {
			continue
		}
		if cb.AllocsPerOp > bb.AllocsPerOp*(1+tol) {
			problems = append(problems, fmt.Sprintf(
				"%s: allocs/op %.1f vs baseline %.1f (>%+.0f%%) — the serial solve stopped pooling",
				bb.Name, cb.AllocsPerOp, bb.AllocsPerOp, 100*tol))
		}
	}

	// The contention advantage is a within-run ratio, robust to the
	// baseline and the current run living on different hardware.
	baseIdx := indexByName(base)
	for _, g := range []string{"g1", "g4", "g16", "g64"} {
		baseRatio, ok := contentionRatio(baseIdx, g)
		if !ok {
			continue
		}
		curRatio, ok := contentionRatio(curIdx, g)
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"BenchmarkEngineContention %s: present in baseline but missing from this run", g))
			continue
		}
		if curRatio < baseRatio*(1-tol) {
			problems = append(problems, fmt.Sprintf(
				"BenchmarkEngineContention %s: single/sharded throughput ratio %.2f vs baseline %.2f (>%.0f%% regression)",
				g, curRatio, baseRatio, 100*tol))
		}
	}

	// The in-kernel parallel speedup at the largest benched chain of
	// each solve family — the shared-cursor curve, the steal-scheduler
	// curve, and the steal bench's adversarial skew lane — same
	// within-run-ratio scheme as the contention gate.
	for _, bench := range []string{"BenchmarkKernelParallelSolve", "BenchmarkKernelStealSolve"} {
		labels := make([]string, 0, 2)
		if nLabel, ok := largestParallelN(base, bench); ok {
			labels = append(labels, nLabel)
		}
		if bench == "BenchmarkKernelStealSolve" {
			labels = append(labels, "skew")
		}
		for _, label := range labels {
			baseRatio, ok := parallelSpeedup(baseIdx, bench, label, "w4")
			if !ok {
				continue
			}
			curRatio, ok := parallelSpeedup(curIdx, bench, label, "w4")
			if !ok {
				problems = append(problems, fmt.Sprintf(
					"%s %s: present in baseline but missing from this run", bench, label))
				continue
			}
			if curRatio < baseRatio*(1-tol) {
				problems = append(problems, fmt.Sprintf(
					"%s %s: w1/w4 speedup %.2f vs baseline %.2f (>%.0f%% regression)",
					bench, label, curRatio, baseRatio, 100*tol))
			}
		}
	}
	return problems
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "committed baseline JSON; exit non-zero when this run regresses against it")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression vs the baseline")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		problems := checkRegression(rep, &base, *tolerance)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "REGRESSION: "+p)
		}
		if len(problems) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions vs %s (tolerance %.0f%%)\n", *baseline, 100**tolerance)
	}
}

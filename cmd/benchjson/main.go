// Command benchjson converts `go test -bench` output into a JSON
// document, so benchmark runs can be committed as machine-readable
// artifacts (BENCH_solver.json at the repo root) and uploaded from CI,
// giving the perf trajectory of the solver kernel a durable record.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// The parser understands the standard benchmark line shape — name,
// iteration count, then (value, unit) pairs such as ns/op, B/op,
// allocs/op — plus testing.B.ReportMetric custom units, and tracks the
// goos/goarch/pkg/cpu headers go test prints per package.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the full JSON document.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse consumes `go test -bench` output and returns the report.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a header like "BenchmarkFoo" alone, or garbage
		}
		b := Benchmark{Package: pkg, Name: fields[0], Runs: runs}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	return rep, nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

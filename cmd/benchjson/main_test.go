package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: chainckpt/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelPlan/ADMVStar-50    	     420	   2837029 ns/op	   23516 B/op	       6 allocs/op
BenchmarkReplanSuffix-8            	    4810	    247545 ns/op	    6872 B/op	       6 allocs/op
PASS
ok  	chainckpt/internal/core	2.240s
pkg: chainckpt
BenchmarkFigure5Hera-8             	       2	 512345678 ns/op	        12.3 twolevel_gain_%	         4.56 partial_gain_%
ok  	chainckpt	1.100s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("bad header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Package != "chainckpt/internal/core" || b.Name != "BenchmarkKernelPlan/ADMVStar-50" {
		t.Errorf("bad identity: %+v", b)
	}
	if b.Runs != 420 || b.NsPerOp != 2837029 || b.BytesPerOp != 23516 || b.AllocsPerOp != 6 {
		t.Errorf("bad values: %+v", b)
	}
	fig := rep.Benchmarks[2]
	if fig.Package != "chainckpt" {
		t.Errorf("pkg header not tracked across packages: %+v", fig)
	}
	if fig.Metrics["twolevel_gain_%"] != 12.3 || fig.Metrics["partial_gain_%"] != 4.56 {
		t.Errorf("custom metrics lost: %+v", fig.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tx\t0.1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}

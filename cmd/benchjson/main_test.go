package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: chainckpt/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernelPlan/ADMVStar-50    	     420	   2837029 ns/op	   23516 B/op	       6 allocs/op
BenchmarkReplanSuffix-8            	    4810	    247545 ns/op	    6872 B/op	       6 allocs/op
PASS
ok  	chainckpt/internal/core	2.240s
pkg: chainckpt
BenchmarkFigure5Hera-8             	       2	 512345678 ns/op	        12.3 twolevel_gain_%	         4.56 partial_gain_%
ok  	chainckpt	1.100s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("bad header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Package != "chainckpt/internal/core" || b.Name != "BenchmarkKernelPlan/ADMVStar-50" {
		t.Errorf("bad identity: %+v", b)
	}
	if b.Runs != 420 || b.NsPerOp != 2837029 || b.BytesPerOp != 23516 || b.AllocsPerOp != 6 {
		t.Errorf("bad values: %+v", b)
	}
	fig := rep.Benchmarks[2]
	if fig.Package != "chainckpt" {
		t.Errorf("pkg header not tracked across packages: %+v", fig)
	}
	if fig.Metrics["twolevel_gain_%"] != 12.3 || fig.Metrics["partial_gain_%"] != 4.56 {
		t.Errorf("custom metrics lost: %+v", fig.Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok \tx\t0.1s\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"BenchmarkKernelPlan/ADMVStar-50-8", "BenchmarkKernelPlan/ADMVStar-50"},
		{"BenchmarkKernelPlan/ADMVStar-50", "BenchmarkKernelPlan/ADMVStar"}, // one trim step; lookup tries raw first
		{"BenchmarkReplanSuffix-8", "BenchmarkReplanSuffix"},
		{"BenchmarkReplanSuffix", "BenchmarkReplanSuffix"},
		{"BenchmarkEngineContention/sharded/g16-4", "BenchmarkEngineContention/sharded/g16"},
		{"BenchmarkFoo-", "BenchmarkFoo-"},
	} {
		if got := trimCPUSuffix(tc.in); got != tc.want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// report builds a Report from (name, ns/op, allocs/op) triples.
func report(benches ...Benchmark) *Report { return &Report{Benchmarks: benches} }

func TestCheckRegressionKernelAllocs(t *testing.T) {
	base := report(Benchmark{Name: "BenchmarkKernelPlan/ADMV-20", AllocsPerOp: 5})
	// Within tolerance: identical, and names may carry a GOMAXPROCS
	// suffix on either side.
	for _, cur := range []*Report{
		report(Benchmark{Name: "BenchmarkKernelPlan/ADMV-20", AllocsPerOp: 5}),
		report(Benchmark{Name: "BenchmarkKernelPlan/ADMV-20-8", AllocsPerOp: 5}),
	} {
		if p := checkRegression(cur, base, 0.15); len(p) != 0 {
			t.Errorf("unexpected regression: %v", p)
		}
	}
	// A warm kernel that stopped pooling fails the gate.
	cur := report(Benchmark{Name: "BenchmarkKernelPlan/ADMV-20-8", AllocsPerOp: 30})
	if p := checkRegression(cur, base, 0.15); len(p) != 1 {
		t.Errorf("alloc regression not flagged: %v", p)
	}
	// The cold benchmark must not be mistaken for the warm one.
	base2 := report(Benchmark{Name: "BenchmarkKernelPlanCold/ADMV-20", AllocsPerOp: 36})
	cur2 := report(Benchmark{Name: "BenchmarkKernelPlanCold/ADMV-20", AllocsPerOp: 80})
	if p := checkRegression(cur2, base2, 0.15); len(p) != 0 {
		t.Errorf("cold-path allocs wrongly gated: %v", p)
	}
}

func TestCheckRegressionStealSpeedup(t *testing.T) {
	base := report(
		Benchmark{Name: "BenchmarkKernelStealSolve/n500/w1", NsPerOp: 100, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n500/w4", NsPerOp: 90},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w1", NsPerOp: 4000, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w4", NsPerOp: 1000}, // 4x at the largest n
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w1", NsPerOp: 300, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w4", NsPerOp: 100}, // 3x on the skewed shape
	)
	// Same ratios at different absolute speeds: fine across machines.
	// Only the largest n is gated, so n500 may drift.
	ok := report(
		Benchmark{Name: "BenchmarkKernelStealSolve/n500/w1-8", NsPerOp: 500, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n500/w4-8", NsPerOp: 900},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w1-8", NsPerOp: 40000, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w4-8", NsPerOp: 10000},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w1-8", NsPerOp: 3000, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w4-8", NsPerOp: 1000},
	)
	if p := checkRegression(ok, base, 0.15); len(p) != 0 {
		t.Errorf("unexpected regression: %v", p)
	}
	// The largest-n steal speedup collapsed 4x -> 2x: flagged.
	badCurve := report(
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w1", NsPerOp: 4000, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w4", NsPerOp: 2000},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w1", NsPerOp: 300, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w4", NsPerOp: 100},
	)
	if p := checkRegression(badCurve, base, 0.15); len(p) != 1 {
		t.Errorf("steal curve regression not flagged: %v", p)
	}
	// The skew-lane speedup collapsed: flagged independently.
	badSkew := report(
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w1", NsPerOp: 4000, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w4", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w1", NsPerOp: 300, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w4", NsPerOp: 290},
	)
	if p := checkRegression(badSkew, base, 0.15); len(p) != 1 {
		t.Errorf("skew regression not flagged: %v", p)
	}
	// The steal bench's serial lane stopped pooling: allocs gate fires.
	badAllocs := report(
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w1", NsPerOp: 4000, AllocsPerOp: 400},
		Benchmark{Name: "BenchmarkKernelStealSolve/n2000/w4", NsPerOp: 1000},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w1", NsPerOp: 300, AllocsPerOp: 19},
		Benchmark{Name: "BenchmarkKernelStealSolve/skew/w4", NsPerOp: 100},
	)
	if p := checkRegression(badAllocs, base, 0.15); len(p) != 1 {
		t.Errorf("steal serial-lane alloc regression not flagged: %v", p)
	}
}

func TestCheckRegressionContentionRatio(t *testing.T) {
	base := report(
		Benchmark{Name: "BenchmarkEngineContention/single/g16", NsPerOp: 400},
		Benchmark{Name: "BenchmarkEngineContention/sharded/g16", NsPerOp: 100}, // baseline speedup 4x
	)
	// Different absolute speeds, same ratio: fine across machines.
	ok := report(
		Benchmark{Name: "BenchmarkEngineContention/single/g16-4", NsPerOp: 4000},
		Benchmark{Name: "BenchmarkEngineContention/sharded/g16-4", NsPerOp: 1000},
	)
	if p := checkRegression(ok, base, 0.15); len(p) != 0 {
		t.Errorf("unexpected regression: %v", p)
	}
	// Ratio collapsed to 2x: a >15% regression of the sharding win.
	bad := report(
		Benchmark{Name: "BenchmarkEngineContention/single/g16", NsPerOp: 400},
		Benchmark{Name: "BenchmarkEngineContention/sharded/g16", NsPerOp: 200},
	)
	if p := checkRegression(bad, base, 0.15); len(p) != 1 {
		t.Errorf("ratio regression not flagged: %v", p)
	}
	// Baseline has the pair but the run dropped it: flagged, not skipped.
	if p := checkRegression(report(), base, 0.15); len(p) != 1 {
		t.Errorf("missing contention pair not flagged: %v", p)
	}
	// No contention data in the baseline: nothing to gate.
	if p := checkRegression(bad, report(), 0.15); len(p) != 0 {
		t.Errorf("gate invented a baseline: %v", p)
	}
}

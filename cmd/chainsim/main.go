// Command chainsim plans a schedule, then cross-checks its expected
// makespan along all four routes implemented by the library: the dynamic
// program's claimed optimum, the paper's closed forms, the exact
// Markov-renewal oracle, and Monte-Carlo simulation.
//
// Usage:
//
//	chainsim [flags]
//
//	-platform name   Hera | Atlas | Coastal | "Coastal SSD" (default Hera)
//	-pattern name    Uniform | Decrease | HighLow (default Uniform)
//	-n tasks         number of tasks (default 30)
//	-total seconds   total computational weight (default 25000)
//	-alg name        ADV* | ADMV* | ADMV (default ADMV)
//	-reps count      Monte-Carlo replications (default 100000)
//	-seed value      random seed (default 1)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"chainckpt"
	"chainckpt/internal/instance"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chainsim: ")

	platName := flag.String("platform", "Hera", "platform name from Table I")
	patName := flag.String("pattern", "Uniform", "workload pattern")
	n := flag.Int("n", 30, "number of tasks")
	total := flag.Float64("total", 25000, "total computational weight in seconds")
	algName := flag.String("alg", "ADMV", "algorithm (ADV*, ADMV*, ADMV)")
	reps := flag.Int("reps", 100000, "Monte-Carlo replications")
	seed := flag.Uint64("seed", 1, "random seed")
	trace := flag.Bool("trace", false, "also print the event log of one replication")
	instPath := flag.String("instance", "", "load chain/platform/schedule from an instance file")
	flag.Parse()

	var (
		c    *chainckpt.Chain
		plat chainckpt.Platform
		err  error
		res  *chainckpt.PlanResult
	)
	if *instPath != "" {
		inst, err := instance.LoadFile(*instPath)
		if err != nil {
			log.Fatal(err)
		}
		c, plat = inst.Chain, inst.Platform
		if inst.Schedule != nil {
			// Simulate the stored schedule as-is.
			res = &chainckpt.PlanResult{Algorithm: "(stored)", Schedule: inst.Schedule}
			if res.ExpectedMakespan, err = chainckpt.Evaluate(c, plat, inst.Schedule); err != nil {
				log.Fatal(err)
			}
		}
	} else {
		if plat, err = chainckpt.PlatformByName(*platName); err != nil {
			log.Fatal(err)
		}
		switch *patName {
		case "Uniform":
			c, err = chainckpt.Uniform(*n, *total)
		case "Decrease":
			c, err = chainckpt.Decrease(*n, *total)
		case "HighLow":
			c, err = chainckpt.HighLow(*n, *total)
		default:
			log.Fatalf("unknown pattern %q", *patName)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if res == nil {
		if res, err = chainckpt.Plan(chainckpt.Algorithm(*algName), c, plat); err != nil {
			log.Fatal(err)
		}
	}
	closed, err := chainckpt.Evaluate(c, plat, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := chainckpt.ExactMakespan(c, plat, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	simres, err := chainckpt.Simulate(c, plat, res.Schedule, chainckpt.SimOptions{
		Replications: *reps,
		Seed:         *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("instance: n=%d, W=%g s on %s, algorithm %s\n\n",
		c.Len(), c.TotalWeight(), plat.Name, res.Algorithm)
	fmt.Printf("dynamic program optimum:    %12.2f s\n", res.ExpectedMakespan)
	fmt.Printf("closed-form re-evaluation:  %12.2f s (rel diff %.2e)\n",
		closed, relDiff(closed, res.ExpectedMakespan))
	fmt.Printf("exact Markov oracle:        %12.2f s (rel diff %.2e)\n",
		exact, relDiff(exact, res.ExpectedMakespan))
	fmt.Printf("Monte-Carlo (%d reps):  %12.2f s ± %.2f (95%% CI)\n",
		*reps, simres.Mean(), simres.HalfWidth95())
	if se := simres.Makespan.StdErr(); se > 0 {
		fmt.Printf("simulation vs oracle:       %12.2f sigma\n", math.Abs(simres.Mean()-exact)/se)
	}
	ev := simres.Events
	fmt.Printf("\nsimulated events: %d fail-stop, %d silent, %d caught by V*, %d caught by V, %d missed by V\n",
		ev.FailStop, ev.Silent, ev.GuaranteedDetected, ev.PartialDetected, ev.PartialMissed)
	fmt.Printf("recoveries: %d disk, %d memory\n", ev.DiskRecoveries, ev.MemoryRecoveries)
	fmt.Printf("\nwhere the time goes (mean per run):\n%s\n", simres.Breakdown)

	if *trace {
		events, err := chainckpt.TraceExecution(c, plat, res.Schedule, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nevent log of one replication (seed %d):\n%s", *seed, chainckpt.FormatTrace(events))
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

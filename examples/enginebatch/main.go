// Command enginebatch demonstrates the batch planning engine: it plans
// a sweep of chains across all Table I platforms concurrently, streams
// the results as they complete, then replans the same instances to show
// the memo taking over.
package main

import (
	"context"
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	eng := chainckpt.NewEngine(chainckpt.EngineOptions{})
	defer eng.Close()

	var reqs []chainckpt.PlanRequest
	for _, p := range chainckpt.Platforms() {
		for _, n := range []int{10, 20, 30} {
			c, err := chainckpt.Uniform(n, 25000)
			if err != nil {
				log.Fatal(err)
			}
			reqs = append(reqs, chainckpt.PlanRequest{
				Algorithm: chainckpt.ADMV,
				Chain:     c,
				Platform:  p,
				Tag:       fmt.Sprintf("%s/n=%d", p.Name, n),
			})
		}
	}

	ctx := context.Background()
	fmt.Println("streaming first pass (completion order):")
	for resp := range eng.Stream(ctx, reqs) {
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		fmt.Printf("  %-16s E[makespan] %9.2f s  cached=%v\n",
			resp.Tag, resp.Result.ExpectedMakespan, resp.Cached)
	}

	fmt.Println("second pass (request order, served from the memo):")
	for _, resp := range eng.PlanMany(ctx, reqs) {
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		fmt.Printf("  %-16s E[makespan] %9.2f s  cached=%v\n",
			resp.Tag, resp.Result.ExpectedMakespan, resp.Cached)
	}

	st := eng.Stats()
	fmt.Printf("engine: %d requests, %d misses, %d hits, %d entries\n",
		st.Requests, st.CacheMisses, st.CacheHits, st.Entries)
}

// Command runtimedemo shows the runtime supervisor end to end: it plans
// a schedule, executes the chain through a fault-injecting runner,
// walks through a recovery trace, and then demonstrates adaptive
// re-planning beating the static schedule when the platform model
// underestimates the true error rates 4×.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"chainckpt"
)

func main() {
	ctx := context.Background()

	// A hot platform so a single demo run actually sees faults, with
	// checkpoints expensive enough that the optimal placement is sparse
	// (leaving adaptation room to densify when reality is worse).
	plat, err := chainckpt.PlatformFromJSON([]byte(`{
		"name": "DemoLab", "lambda_f": 1e-4, "lambda_s": 4e-4,
		"c_d": 100, "c_m": 10, "r_d": 100, "r_m": 10,
		"v_star": 10, "v": 0.1, "recall": 0.8
	}`))
	if err != nil {
		log.Fatal(err)
	}
	c, err := chainckpt.Uniform(40, 25000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := chainckpt.PlanADMVStar(c, plat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned schedule: %s\n", res.Schedule)
	fmt.Printf("model-expected makespan: %.0f s\n\n", res.ExpectedMakespan)

	// --- Part 1: one supervised execution with recovery -------------
	sup := chainckpt.NewSupervisor(chainckpt.SupervisorOptions{})
	rep, err := sup.Run(ctx, chainckpt.RunJob{
		Chain: c, Platform: plat, Schedule: res.Schedule,
		Runner: chainckpt.NewSimRunner(plat, 7),
		Record: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed makespan: %.0f s (%d fail-stop, %d silent detected, %d disk / %d memory recoveries)\n",
		rep.Makespan, rep.Events.FailStop, rep.Events.SilentDetected,
		rep.Events.DiskRecoveries, rep.Events.MemoryRecoveries)
	fmt.Println("\nrecovery excerpt from the event log:")
	for _, line := range recoveryExcerpt(chainckpt.FormatTrace(rep.Trace)) {
		fmt.Println("  " + line)
	}

	// --- Part 2: adaptive re-planning under a misspecified model ----
	// The true rates are 4x the modeled ones; the static schedule
	// checkpoints too sparsely. The adaptive supervisor notices via its
	// online MLE estimates and re-plans the remaining suffix mid-run.
	const reps = 60
	var static, adaptive float64
	var replans int64
	for r := 0; r < reps; r++ {
		seed := uint64(100 + r)
		sRep, err := sup.Run(ctx, chainckpt.RunJob{
			Chain: c, Platform: plat, Schedule: res.Schedule,
			Runner: chainckpt.NewMisspecifiedRunner(plat, 4, 4, seed),
		})
		if err != nil {
			log.Fatal(err)
		}
		aRep, err := sup.RunAdaptive(ctx, chainckpt.RunJob{
			Chain: c, Platform: plat, Schedule: res.Schedule, Algorithm: chainckpt.ADMVStar,
			Runner: chainckpt.NewMisspecifiedRunner(plat, 4, 4, seed),
		}, chainckpt.AdaptPolicy{})
		if err != nil {
			log.Fatal(err)
		}
		static += sRep.Makespan / reps
		adaptive += aRep.Makespan / reps
		replans += aRep.Events.Replans
	}
	fmt.Printf("\ntrue rates 4x the model, %d paired runs:\n", reps)
	fmt.Printf("  static schedule:   %.0f s mean\n", static)
	fmt.Printf("  adaptive re-plans: %.0f s mean (%d re-plans, %+.1f%%)\n",
		adaptive, replans, 100*(adaptive/static-1))
}

// recoveryExcerpt pulls a window around the first fail-stop (or detect)
// event so the demo prints the interesting part of a long trace.
func recoveryExcerpt(trace string) []string {
	lines := strings.Split(strings.TrimSpace(trace), "\n")
	for i, line := range lines {
		if strings.Contains(line, "failstop") || strings.Contains(line, "detect") {
			lo := max(0, i-2)
			hi := min(len(lines), i+4)
			return lines[lo:hi]
		}
	}
	if len(lines) > 6 {
		return lines[:6]
	}
	return lines
}

// Quickstart: plan the optimal two-level checkpointing and verification
// schedule for a 50-task uniform chain on the Hera platform, the paper's
// headline configuration.
package main

import (
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	// A linear workflow of 50 equally sized tasks, 25000 s of compute in
	// total — the paper's Uniform pattern.
	c, err := chainckpt.Uniform(50, 25000)
	if err != nil {
		log.Fatal(err)
	}

	// Hera: 256 nodes, fail-stop MTBF 12.2 days, silent-error MTBF 3.4
	// days, disk checkpoint 300 s, memory checkpoint 15.4 s (Table I).
	p := chainckpt.Hera()

	// ADMV is the complete algorithm: disk + memory checkpoints,
	// guaranteed + partial verifications (Section III-B).
	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		log.Fatal(err)
	}

	counts := res.Schedule.Counts()
	fmt.Printf("expected makespan:    %.1f s (%.2f%% overhead over the %v s of compute)\n",
		res.ExpectedMakespan, 100*(res.NormalizedMakespan(c)-1), c.TotalWeight())
	fmt.Printf("mechanisms placed:    %d disk ckpt, %d memory ckpt, %d guaranteed verif, %d partial verif\n",
		counts.Disk, counts.Memory, counts.Guaranteed, counts.Partial)
	fmt.Println()
	fmt.Println(res.Schedule.Strip())
}

// SSD trade-off study: on Coastal SSD, checkpoints and guaranteed
// verifications are expensive (C_M = V* = 180 s), so cheap partial
// verifications become "the only affordable resilience tool" (paper,
// Section IV). This example reproduces that effect with the public API:
// it sweeps the partial-verification recall and cost and shows how the
// optimal schedule shifts from guaranteed to partial verifications.
package main

import (
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	c, err := chainckpt.Uniform(50, 25000)
	if err != nil {
		log.Fatal(err)
	}
	base := chainckpt.CoastalSSD()

	// Reference points: the two-level planner without partials, and the
	// full planner at the paper's parameters (V = V*/100, r = 0.8).
	star, err := chainckpt.PlanADMVStar(c, base)
	if err != nil {
		log.Fatal(err)
	}
	full, err := chainckpt.PlanADMV(c, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Coastal SSD, Uniform, n=50 (C_D=%g, C_M=V*=%g, V=%g, r=%g)\n\n",
		base.CD, base.CM, base.V, base.Recall)
	fmt.Printf("ADMV* (no partials):  %.1f s\n", star.ExpectedMakespan)
	fmt.Printf("ADMV  (with partials): %.1f s  -> %.2f%% better\n\n",
		full.ExpectedMakespan, 100*(1-full.ExpectedMakespan/star.ExpectedMakespan))

	fmt.Println("recall sweep (V = V*/100):")
	fmt.Println("  r      E[makespan]   #V*  #V    gain vs ADMV*")
	for _, r := range []float64{0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0} {
		p := base
		p.Recall = r
		res, err := chainckpt.PlanADMV(c, p)
		if err != nil {
			log.Fatal(err)
		}
		counts := res.Schedule.Counts()
		fmt.Printf("  %-5.2f  %10.1f   %3d  %3d    %5.2f%%\n",
			r, res.ExpectedMakespan, counts.Guaranteed, counts.Partial,
			100*(1-res.ExpectedMakespan/star.ExpectedMakespan))
	}

	fmt.Println("\npartial-verification cost sweep (r = 0.8):")
	fmt.Println("  V/V*    E[makespan]   #V*  #V")
	for _, frac := range []float64{0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0} {
		p := base
		p.V = frac * p.VStar
		res, err := chainckpt.PlanADMV(c, p)
		if err != nil {
			log.Fatal(err)
		}
		counts := res.Schedule.Counts()
		fmt.Printf("  %-6.3f  %10.1f   %3d  %3d\n",
			frac, res.ExpectedMakespan, counts.Guaranteed, counts.Partial)
	}

	fmt.Println("\noptimal placement at the paper's parameters:")
	fmt.Println(full.Schedule.Strip())
}

// Data-volume-aware planning: checkpoint and verification costs are not
// platform constants in practice — they scale with the data alive at each
// task boundary. A boundary right after a reduction is cheap to
// checkpoint; one in the middle of a mesh refinement is not. This example
// models an adaptive-mesh pipeline whose live data volume swells and
// shrinks across the chain, and shows how the optimal placement migrates
// to the cheap boundaries — and what ignoring the volumes would cost.
package main

import (
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	// 16 pipeline stages, 10 hours of compute, uniform weights.
	const n = 16
	c, err := chainckpt.Uniform(n, 36000)
	if err != nil {
		log.Fatal(err)
	}
	p := chainckpt.Hera()

	// Live data volume (relative to the platform's reference volume) at
	// each boundary: refinement triples the state mid-pipeline, the final
	// reduction shrinks it back.
	sizes := []float64{
		0.5, 0.5, 1.0, 2.0, 3.0, 3.0, 3.0, 2.5,
		2.0, 1.5, 1.0, 0.8, 0.6, 0.4, 0.3, 0.3,
	}
	costs, err := chainckpt.ScaledCosts(p, sizes)
	if err != nil {
		log.Fatal(err)
	}

	aware, err := chainckpt.PlanWithCosts(chainckpt.ADMV, c, p, costs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume-aware optimum: %.1f s\n%s\n\n", aware.ExpectedMakespan, aware.Schedule.Strip())

	// The naive plan assumes constant costs, then pays the real ones.
	naive, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		log.Fatal(err)
	}
	naiveReal, err := chainckpt.EvaluateWithCosts(c, p, costs, naive.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume-blind plan under the real costs: %.1f s (+%.2f%%)\n%s\n\n",
		naiveReal, 100*(naiveReal/aware.ExpectedMakespan-1), naive.Schedule.Strip())

	// Cross-check the aware optimum with the exact oracle.
	exact, err := chainckpt.ExactMakespanWithCosts(c, p, costs, aware.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact oracle agrees: %.1f s\n", exact)

	// Where do the memory checkpoints sit relative to the volume profile?
	fmt.Println("\nboundary  volume  action")
	for i := 1; i <= n; i++ {
		fmt.Printf("%8d  %6.1f  %s\n", i, sizes[i-1], aware.Schedule.At(i))
	}
}

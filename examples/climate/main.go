// Climate-style workflow: the paper's motivating scenario is an HPC
// application partitioned into a succession of tightly-coupled
// computational kernels that exchange data at their boundaries. This
// example models a coupled earth-system step pipeline with heterogeneous
// kernel weights, compares all three planners on Atlas, and Monte-Carlo
// simulates the winning schedule to confirm the predicted makespan.
package main

import (
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	// One coupled simulation epoch: kernels with very different costs.
	// Weights are seconds of error-free compute on the full machine.
	c, err := chainckpt.NewChain(
		chainckpt.Task{Name: "atmosphere-dynamics", Weight: 5200},
		chainckpt.Task{Name: "atmosphere-physics", Weight: 3100},
		chainckpt.Task{Name: "ocean-barotropic", Weight: 2600},
		chainckpt.Task{Name: "ocean-baroclinic", Weight: 4400},
		chainckpt.Task{Name: "sea-ice", Weight: 900},
		chainckpt.Task{Name: "land-surface", Weight: 700},
		chainckpt.Task{Name: "river-routing", Weight: 250},
		chainckpt.Task{Name: "coupler-regrid", Weight: 1400},
		chainckpt.Task{Name: "biogeochemistry", Weight: 3300},
		chainckpt.Task{Name: "aerosol-chemistry", Weight: 2100},
		chainckpt.Task{Name: "data-assimilation", Weight: 800},
		chainckpt.Task{Name: "diagnostics-io", Weight: 250},
	)
	if err != nil {
		log.Fatal(err)
	}

	p := chainckpt.Atlas() // highest silent-error rate of Table I
	fmt.Printf("workflow: %d kernels, %.0f s of compute on %s\n\n", c.Len(), c.TotalWeight(), p.Name)

	var best *chainckpt.PlanResult
	for _, alg := range []chainckpt.Algorithm{chainckpt.ADV, chainckpt.ADMVStar, chainckpt.ADMV} {
		res, err := chainckpt.Plan(alg, c, p)
		if err != nil {
			log.Fatal(err)
		}
		counts := res.Schedule.Counts()
		fmt.Printf("%-6s expected %.1f s (overhead %5.2f%%)  D=%d M=%d V*=%d V=%d\n",
			alg, res.ExpectedMakespan, 100*(res.NormalizedMakespan(c)-1),
			counts.Disk, counts.Memory, counts.Guaranteed, counts.Partial)
		if best == nil || res.ExpectedMakespan < best.ExpectedMakespan {
			best = res
		}
	}

	fmt.Printf("\nbest schedule (%s):\n", best.Algorithm)
	for i := 1; i <= c.Len(); i++ {
		if a := best.Schedule.At(i); a != chainckpt.Action(0) {
			fmt.Printf("  after %-22s %s\n", c.Task(i).Name+":", a)
		}
	}

	// Confirm the analytic expectation by simulation.
	simres, err := chainckpt.Simulate(c, p, best.Schedule, chainckpt.SimOptions{
		Replications: 200000,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated makespan: %.1f s ± %.1f (95%% CI, %d replications)\n",
		simres.Mean(), simres.HalfWidth95(), simres.Makespan.N())
	fmt.Printf("analytic optimum:   %.1f s\n", best.ExpectedMakespan)
	fmt.Printf("events per run:     %.3f fail-stop, %.3f silent errors\n",
		float64(simres.Events.FailStop)/float64(simres.Makespan.N()),
		float64(simres.Events.Silent)/float64(simres.Makespan.N()))
}

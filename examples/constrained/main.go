// Constrained planning: real workflows cannot checkpoint everywhere. A
// kernel may hold transient state too large for the in-memory checkpoint
// buffer, the parallel file system may be reserved during I/O phases, or
// a kernel may lack a cheap detector for partial verification. This
// example plans a pipeline where only some boundaries admit each
// mechanism and compares the constrained optimum against the free one and
// against the best baseline heuristic.
package main

import (
	"fmt"
	"log"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	// A 16-stage signal-processing pipeline, 8 hours of compute.
	c, err := chainckpt.Uniform(16, 8*3600)
	if err != nil {
		log.Fatal(err)
	}
	p := chainckpt.Hera()

	// Free optimum for reference.
	free, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		log.Fatal(err)
	}

	// Constraints:
	//  - stages 1-4 stream through a burst buffer: no disk checkpoints;
	//  - stages 5-8 hold oversized transient state: no memory checkpoints
	//    (verification is still possible);
	//  - odd stages lack a lightweight detector: no partial verification.
	cons, err := chainckpt.NewConstraints(16)
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		cons.Forbid(i, chainckpt.Disk)
	}
	for i := 5; i <= 8; i++ {
		cons.Forbid(i, chainckpt.Memory)
	}
	for i := 1; i < 16; i += 2 {
		cons.Forbid(i, chainckpt.Partial)
	}

	constrained, err := chainckpt.PlanConstrained(chainckpt.ADMV, c, p, cons)
	if err != nil {
		log.Fatal(err)
	}

	// How does the constrained optimum compare with a naive baseline?
	greedyFree, err := chainckpt.HeuristicGreedy(c, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("free optimum:         %.1f s\n%s\n\n",
		free.ExpectedMakespan, free.Schedule.Strip())
	fmt.Printf("constrained optimum:  %.1f s (+%.3f%% for the constraints)\n%s\n\n",
		constrained.ExpectedMakespan,
		100*(constrained.ExpectedMakespan/free.ExpectedMakespan-1),
		constrained.Schedule.Strip())
	fmt.Printf("greedy (free):        %.1f s\n", greedyFree.ExpectedMakespan)

	// The constrained schedule respects every restriction by construction.
	for i := 1; i <= 16; i++ {
		a := constrained.Schedule.At(i)
		if !cons.Permits(i, a) {
			log.Fatalf("boundary %d violates constraints: %v", i, a)
		}
	}
	fmt.Println("\nall constraints respected.")
}

// Custom platform: the paper invites readers to experiment with their own
// parameters. This example defines a hypothetical exascale machine as
// JSON, plans a schedule for a Decrease-pattern solver on it, and then
// cross-checks the predicted makespan along the library's three
// independent routes: the closed-form model, the exact Markov oracle, and
// Monte-Carlo simulation.
package main

import (
	"fmt"
	"log"
	"math"

	"chainckpt"
)

const exascaleJSON = `{
	"name":     "Exa-1",
	"nodes":    8192,
	"lambda_f": 5.0e-6,
	"lambda_s": 1.2e-5,
	"c_d":      600,
	"c_m":      8,
	"r_d":      600,
	"r_m":      8,
	"v_star":   8,
	"v":        0.08,
	"recall":   0.85
}`

func main() {
	log.SetFlags(0)

	p, err := chainckpt.PlatformFromJSON([]byte(exascaleJSON))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %v\n", p)
	fmt.Printf("fail-stop MTBF %.1f days, silent MTBF %.1f days\n\n",
		p.FailStopMTBF()/86400, p.SilentMTBF()/86400)

	// A dense-solver-like workflow: quadratically decreasing task weights
	// (the paper's Decrease pattern), 12 hours of compute.
	c, err := chainckpt.Decrease(40, 12*3600)
	if err != nil {
		log.Fatal(err)
	}

	res, err := chainckpt.PlanADMV(c, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned with %s: expected %.1f s (overhead %.2f%%)\n",
		res.Algorithm, res.ExpectedMakespan, 100*(res.NormalizedMakespan(c)-1))
	fmt.Println(res.Schedule.Strip())

	// Route 1: the paper's closed forms, re-evaluating the fixed schedule.
	closed, err := chainckpt.Evaluate(c, p, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	// Route 2: exact Markov-renewal oracle (independent of the DP algebra).
	exact, err := chainckpt.ExactMakespan(c, p, res.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	// Route 3: Monte-Carlo fault injection.
	simres, err := chainckpt.Simulate(c, p, res.Schedule, chainckpt.SimOptions{
		Replications: 100000,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncross-check of the expected makespan:\n")
	fmt.Printf("  dynamic program:   %12.2f s\n", res.ExpectedMakespan)
	fmt.Printf("  closed-form model: %12.2f s (rel diff %.1e)\n", closed, rel(closed, res.ExpectedMakespan))
	fmt.Printf("  exact oracle:      %12.2f s (rel diff %.1e)\n", exact, rel(exact, res.ExpectedMakespan))
	fmt.Printf("  simulation:        %12.2f s ± %.2f (95%% CI)\n", simres.Mean(), simres.HalfWidth95())
	if se := simres.Makespan.StdErr(); se > 0 {
		fmt.Printf("  sim vs oracle:     %12.2f sigma\n", math.Abs(simres.Mean()-exact)/se)
	}
}

func rel(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(a, b)
}

// Workflow DAGs: the paper's future work asks how to protect general
// workflows. Under its own simplified scenario — every task needs the
// whole platform — a DAG runs serially in some topological order, so the
// problem becomes: pick the linearization, then place checkpoints and
// verifications optimally on the resulting chain. This example plans an
// uncertainty-quantification campaign (preprocess, fan-out of ensemble
// members of very different sizes, postprocess) and shows that the
// serialization choice itself affects the expected makespan.
package main

import (
	"fmt"
	"log"
	"strings"

	"chainckpt"
)

func main() {
	log.SetFlags(0)

	g := chainckpt.NewWorkflow()
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	// Tasks: a preprocessing stage, five ensemble members with skewed
	// costs, an analysis join, and archiving.
	must(g.AddNode("preprocess", 1800))
	must(g.AddNode("member-hi", 9000)) // high-resolution member
	must(g.AddNode("member-a", 3600))
	must(g.AddNode("member-b", 3500))
	must(g.AddNode("member-c", 3400))
	must(g.AddNode("member-lo", 900)) // coarse member
	must(g.AddNode("analysis", 2200))
	must(g.AddNode("archive", 600))
	for _, m := range []string{"member-hi", "member-a", "member-b", "member-c", "member-lo"} {
		must(g.AddEdge("preprocess", m))
		must(g.AddEdge(m, "analysis"))
	}
	must(g.AddEdge("analysis", "archive"))

	p := chainckpt.Hera()
	p.LambdaF *= 20 // a rough patch of machine life
	p.LambdaS *= 20

	fmt.Printf("workflow: %d tasks, %.0f s of compute on %s (rates x20)\n\n",
		g.Len(), g.TotalWeight(), p.Name)

	// Compare the serialization strategies individually.
	for _, s := range chainckpt.WorkflowStrategies() {
		res, err := chainckpt.PlanWorkflowWith(chainckpt.ADMVStar, g, p, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s E=%9.1f s   order: %s\n",
			s, res.Plan.ExpectedMakespan, strings.Join(res.Order, " > "))
	}

	best, err := chainckpt.PlanWorkflow(chainckpt.ADMVStar, g, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest strategy: %s (E = %.1f s)\n", best.Strategy, best.Plan.ExpectedMakespan)
	fmt.Println(best.Plan.Schedule.Strip())
}
